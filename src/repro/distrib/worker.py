"""Worker: a thin lease-execute-report loop over one coordinator socket.

``python -m repro.distrib.worker HOST:PORT`` (or ``repro worker
HOST:PORT``) connects to a coordinator, announces itself, and then loops:
request a unit, run it through the *same* executor functions the
in-process and pool paths use (:func:`repro.scenarios.runner._execute` /
``_execute_cell``), and stream the resulting document back. A daemon
thread heartbeats every couple of seconds so the coordinator can tell a
long cell from a dead worker. The heavy ``repro.experiments`` import is
deferred to the first lease, so a worker is on the wire within
milliseconds of starting.

Connection lifecycle: dialing retries with jittered exponential backoff
(:func:`repro.distrib.chaos.backoff_delays`) until ``connect_timeout``
elapses — starting the worker terminal before the coordinator terminal
works — and each session opens with the protocol v2 handshake
(:func:`repro.distrib.auth.client_handshake`): hello, answer a challenge
when the coordinator holds a shared secret (``REPRO_SECRET`` /
``--secret-file``), proceed on welcome. A *lost* connection (EOF without
``shutdown``, a torn or undecodable frame, a send error) sends the
worker back to dialing rather than killing it: the coordinator re-leases
whatever the worker held, the worker reconnects and authenticates again
(fresh nonce), and the sweep continues. An authentication *refusal* is
final — the secret will be just as wrong on the next dial, so the worker
exits :data:`AUTH_EXIT` instead of mounting a reconnect storm.

Graceful drain: SIGTERM sets a drain flag. The worker finishes the unit
it holds (and reports its result), then sends ``bye`` instead of
``ready`` and exits 0 — so a fleet can be rolled (`kill`, instance
retirement, deploys) without re-leasing churn or lost work. The main
loop polls the socket with a short ``select`` timeout between frames, so
an *idle* drained worker departs within half a second too.

Fault injection: ``REPRO_WORKER_MAX_UNITS=N`` makes the worker die
abruptly — holding its lease, without a word to the coordinator — when
lease ``N+1`` arrives, exiting with status :data:`KILLED_EXIT`. The
seeded chaos harness (``REPRO_CHAOS``, :mod:`repro.distrib.chaos`) adds
probabilistic faults at the same point: ``kill_worker`` dies the same
abrupt way, ``stall_heartbeat`` silences the heartbeat thread while the
unit computes (so the coordinator must reap the stall and drop the late
result as a duplicate), ``drop_auth`` tears the handshake mid-flight,
and the frame seam in ``protocol.send_msg`` injects drops/corruption/
replays/latency on everything this worker sends.
"""

from __future__ import annotations

import argparse
import logging
import os
import select
import signal
import socket
import sys
import threading
import time
from typing import Any

from .auth import AuthError, client_handshake, load_secret
from .chaos import backoff_delays, injector
from .protocol import ProtocolError, parse_address, recv_msg, send_msg

__all__ = ["serve", "main", "KILLED_EXIT", "AUTH_EXIT", "HEARTBEAT_S"]

logger = logging.getLogger(__name__)

#: Seconds between heartbeats while the main loop is busy in a unit.
HEARTBEAT_S = 2.0

#: Exit status of a worker that died via ``REPRO_WORKER_MAX_UNITS``
#: or the ``kill_worker`` chaos fault.
KILLED_EXIT = 17

#: Exit status when the coordinator refused this worker's credentials.
AUTH_EXIT = 4

#: Bound on the handshake conversation: a coordinator that accepts the
#: connection but never answers the hello must not wedge the worker.
_HANDSHAKE_TIMEOUT_S = 10.0

#: Main-loop poll interval: how often the drain flag is checked while
#: waiting for the next frame.
_POLL_S = 0.5


def _connect(address: tuple[str, int], timeout: float) -> socket.socket:
    """Dial the coordinator, retrying with jittered backoff until ``timeout``.

    The backoff schedule starts at tens of milliseconds (a coordinator
    restarting right now) and doubles to a 2s cap (one that needs a
    moment), with jitter so a reconnecting fleet does not dogpile the
    listen socket in lockstep. The delays generator's budget *is* the
    time bound; exhausting it raises ``OSError`` naming the address.
    """
    host, port = address
    last: OSError | None = None
    for delay in backoff_delays(total=timeout):
        try:
            sock = socket.create_connection(address, timeout=5.0)
            # create_connection's timeout would otherwise persist as a 5s
            # *recv* timeout — and an idle worker (queue drained, another
            # worker holding the long tail unit) must block on the next
            # lease indefinitely, not die of boredom. Liveness flows the
            # other way, via the heartbeat thread.
            sock.settimeout(None)
            return sock
        except OSError as exc:
            last = exc
            time.sleep(delay)
    raise OSError(
        f"could not reach coordinator at {host}:{port} within "
        f"{timeout:.0f}s (last error: {last})"
    )


def _execute_lease(msg: dict[str, Any]) -> dict[str, Any]:
    """Run one leased unit; always returns a result document.

    The executor functions trap scenario exceptions themselves, but a
    lease can also fail *before* execution — undecodable params, or a
    scenario the worker's checkout doesn't know (version skew across a
    fleet). Those must come back as error documents too: a crash here
    would kill the worker, the coordinator would re-lease the poison unit
    to the next worker, and the whole fleet would fall over serially.
    """
    try:
        # Deferred import: pulls in repro.experiments (the whole
        # simulator) only once real work arrives.
        from ..scenarios.encode import from_portable
        from ..scenarios.runner import _execute, _execute_cell

        params = from_portable(msg["params"])
        if msg["kind"] == "cell":
            doc, _value = _execute_cell(msg["name"], msg["cell_key"], params)
        else:
            doc, _value = _execute(msg["name"], params)
        return doc
    except Exception:
        import traceback

        # KeyboardInterrupt/SystemExit propagate (BaseException) and end
        # the worker; lease failures are reported to the coordinator AND
        # logged here with the unit label — the worker-side log is the
        # only record if the coordinator abandons the unit.
        logger.warning(
            "lease %r (cell=%r) failed before/at execution",
            msg.get("name"),
            msg.get("cell_key"),
            exc_info=True,
        )
        doc = {
            "scenario": msg.get("name"),
            "params": msg.get("params"),
            "error": traceback.format_exc(),
        }
        if msg.get("cell_key"):
            doc["cell"] = msg["cell_key"]
        return doc


def _session(
    sock: socket.socket,
    name: str,
    *,
    completed: int,
    max_units: int | None,
    heartbeat_s: float,
    secret: bytes | None = None,
    drain: threading.Event | None = None,
) -> tuple[str, int]:
    """One connected stint: handshake, then lease/result until the link ends.

    Returns ``("shutdown", completed)`` on an orderly coordinator-driven
    end, ``("drain", completed)`` when SIGTERM drained this worker (bye
    sent, lease finished), and ``("lost", completed)`` when the
    connection tore (EOF without shutdown, protocol violation, send
    failure) — the caller reconnects. :class:`AuthError` propagates: a
    refused credential is fatal, not retriable.
    """
    lock = threading.Lock()
    stop = threading.Event()
    stalled = threading.Event()
    if drain is None:
        drain = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat_s):
            if stalled.is_set():
                continue  # chaos: the worker computes on, silently
            try:
                send_msg(sock, {"type": "heartbeat"}, lock)
            except OSError:
                return

    try:
        # Bounded handshake: a coordinator that accepts the connection
        # but never converses must not hang the worker. The v1-compat
        # case (legacy coordinator, no secret) cannot happen here —
        # every coordinator in this tree answers a v2 hello.
        sock.settimeout(_HANDSHAKE_TIMEOUT_S)
        client_handshake(sock, role="worker", worker=name, secret=secret, lock=lock)
        sock.settimeout(None)
    except socket.timeout:
        sock.close()
        return "lost", completed
    except (OSError, ProtocolError):
        sock.close()
        return "lost", completed
    except AuthError:
        sock.close()
        raise

    threading.Thread(target=_beat, name="heartbeat", daemon=True).start()
    try:
        send_msg(sock, {"type": "ready"}, lock)
        while True:
            if drain.is_set():
                # Idle (or just finished a unit): deregister cleanly so
                # the coordinator neither waits out a lease timeout nor
                # counts us as lost.
                send_msg(sock, {"type": "bye"}, lock)
                return "drain", completed
            readable, _, _ = select.select([sock], [], [], _POLL_S)
            if not readable:
                continue
            try:
                msg = recv_msg(sock)
            except ProtocolError:
                return "lost", completed  # torn/corrupt frame: reconnect
            if msg is None:
                return "lost", completed  # EOF without shutdown
            if msg.get("type") == "shutdown":
                return "shutdown", completed
            if msg.get("type") != "lease":
                continue  # replayed welcome/challenge etc.: idempotent skip
            if max_units is not None and completed >= max_units:
                # Fault injection: die holding the lease, mid-sweep, the
                # way a powered-off machine would.
                os._exit(KILLED_EXIT)
            inj = injector()
            if inj is not None:
                # One draw each, kill before stall, so the decision
                # sequence per lease is fixed regardless of which fires.
                kill = inj.decide("kill_worker")
                if inj.decide("stall_heartbeat"):
                    stalled.set()
                if kill:
                    os._exit(KILLED_EXIT)
            doc = _execute_lease(msg)
            send_msg(sock, {"type": "result", "uid": msg["uid"], "doc": doc}, lock)
            completed += 1
            stalled.clear()
            if not drain.is_set():
                send_msg(sock, {"type": "ready"}, lock)
            # A set drain flag falls through to the bye at the loop top:
            # the held lease was finished and reported first.
    except OSError:
        return "lost", completed
    finally:
        stop.set()
        sock.close()


def serve(
    address: str | tuple[str, int],
    *,
    connect_timeout: float = 30.0,
    max_units: int | None = None,
    heartbeat_s: float = HEARTBEAT_S,
    secret: bytes | None = None,
    log=print,
) -> int:
    """Attach to a coordinator and work until it says shutdown.

    Installs a SIGTERM drain handler when running on the main thread:
    the current unit finishes and is reported, then the worker says
    ``bye`` and exits 0. Returns :data:`AUTH_EXIT` when the coordinator
    refuses this worker's credentials.
    """
    host, port = parse_address(address)
    name = f"{socket.gethostname()}-{os.getpid()}"
    completed = 0
    drain = threading.Event()
    # The previous SIGTERM disposition must come back on exit: a process
    # that embeds serve() (tests, the CLI after a dial failure) would
    # otherwise keep the drain hook forever, and forked children — e.g.
    # multiprocessing pool workers — inherit it and shrug off
    # Pool.terminate()'s SIGTERM, hanging the join.
    prev_handler = None
    handler_installed = False
    try:
        prev_handler = signal.signal(
            signal.SIGTERM, lambda _sig, _frm: drain.set()
        )
        handler_installed = True
    except ValueError:
        pass  # not the main thread (tests embed serve()); no drain signal
    try:
        # The *initial* dial failing propagates (the CLI turns it into
        # "worker error: ..."); only an established link's loss is retried.
        sock = _connect((host, port), connect_timeout)
        while True:
            log(
                f"[worker {name}] connected to {host}:{port}",
                file=sys.stderr,
                flush=True,
            )
            try:
                outcome, completed = _session(
                    sock,
                    name,
                    completed=completed,
                    max_units=max_units,
                    heartbeat_s=heartbeat_s,
                    secret=secret,
                    drain=drain,
                )
            except AuthError as exc:
                log(f"[worker {name}] {exc}; exiting", file=sys.stderr, flush=True)
                return AUTH_EXIT
            if outcome == "shutdown":
                break
            if outcome == "drain":
                log(
                    f"[worker {name}] drained after SIGTERM "
                    f"({completed} unit(s))",
                    file=sys.stderr,
                    flush=True,
                )
                return 0
            if drain.is_set():
                # The link tore while we were already draining: nothing
                # left to hand back, so depart instead of reconnecting.
                break
            try:
                sock = _connect((host, port), connect_timeout)
            except OSError as exc:
                # A coordinator that finished (or died for good) while our
                # link was torn looks exactly like this; exiting cleanly
                # matches the pre-reconnect behavior for that common case,
                # and the log line carries the address for the genuine one.
                log(f"[worker {name}] {exc}; exiting", file=sys.stderr, flush=True)
                break
        log(f"[worker {name}] done ({completed} unit(s))", file=sys.stderr, flush=True)
        return 0
    finally:
        if handler_installed:
            signal.signal(signal.SIGTERM, prev_handler)


def max_units_from_env() -> int | None:
    """The ``REPRO_WORKER_MAX_UNITS`` fault-injection knob, if set.

    Shared by both worker spellings (``python -m repro.distrib.worker``
    and ``repro worker``) so they behave identically.
    """
    env_max = os.environ.get("REPRO_WORKER_MAX_UNITS")
    return int(env_max) if env_max else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker", description="Opera-repro distributed worker"
    )
    parser.add_argument("address", metavar="HOST:PORT", help="coordinator address")
    parser.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        help="seconds to keep retrying the initial connection (default 30)",
    )
    parser.add_argument(
        "--secret-file",
        default=None,
        help="file holding the shared secret (default: REPRO_SECRET env)",
    )
    args = parser.parse_args(argv)
    return serve(
        args.address,
        connect_timeout=args.connect_timeout,
        max_units=max_units_from_env(),
        secret=load_secret(args.secret_file),
    )


if __name__ == "__main__":
    raise SystemExit(main())
