"""Distributed cell executor: coordinator/worker protocol over TCP.

The share-nothing cell model (PR 3) makes multi-machine execution cheap:
a remote worker only needs ``(scenario, cell key, params)`` in and a
portable cell document out. This package supplies the three pieces:

* :mod:`.protocol` — length-prefixed JSON frames; values reuse the
  portable encoding from :mod:`repro.scenarios.encode`, so the wire
  format and the cell-cache format are one vocabulary.
* :mod:`.coordinator` — owns the plan: leases cost-ordered units to
  connected workers, tracks heartbeats, re-leases units from dead or
  stalled workers, and streams result documents back.
* :mod:`.worker` — the thin remote loop (``repro worker HOST:PORT``).

:class:`repro.scenarios.Runner` is the only intended caller: with
``executor="distributed"`` it stands up a coordinator, optionally spawns
local subprocess workers (the default backend, so a single machine gets
distributed semantics for free), and feeds the result stream through the
same cache/merge/progress path as every other executor — which is what
pins distributed results bit-identical to in-process ones.

Long-lived service mode (``repro serve``) adds :mod:`.jobs` (a
multi-sweep job queue with fair-share leasing and the client side of
``repro submit|jobs|cancel``) and :mod:`.auth` (HMAC shared-secret
challenge/response on the frame protocol). An *unauthenticated*
coordinator still trusts its peers (lease parameters are executed,
documents are decoded via dataclass import paths); bind it to loopback
or a trusted network, or arm a shared secret — and read the security-
model note in the README before leaving trusted networks.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

# NOTE: .worker is deliberately NOT imported here — workers start via
# ``python -m repro.distrib.worker``, and importing the module from the
# package __init__ would make runpy warn about the double import.
from .auth import AuthError, load_secret
from .chaos import ChaosConfig, ChaosCrash, ChaosError, backoff_delays, parse_chaos
from .coordinator import Coordinator
from .jobs import (
    JobCancelled,
    JobQueue,
    ServiceClient,
    ServiceError,
    cancel_job,
    fetch_jobs,
)
from .journal import JournalState, RunJournal, journal_path, load_journal
from .protocol import (
    PROTO_VERSION,
    ProtocolError,
    ProtocolTimeout,
    parse_address,
)

__all__ = [
    "AuthError",
    "ChaosConfig",
    "ChaosCrash",
    "ChaosError",
    "Coordinator",
    "JobCancelled",
    "JobQueue",
    "JournalState",
    "PROTO_VERSION",
    "ProtocolError",
    "ProtocolTimeout",
    "RunJournal",
    "ServiceClient",
    "ServiceError",
    "backoff_delays",
    "cancel_job",
    "fetch_jobs",
    "journal_path",
    "load_journal",
    "load_secret",
    "parse_address",
    "parse_chaos",
    "spawn_local_worker",
]


def spawn_local_worker(
    address: tuple[str, int],
    *,
    env: dict[str, str] | None = None,
    role: str | None = None,
    secret: bytes | None = None,
) -> subprocess.Popen:
    """Start one local subprocess worker attached to ``address``.

    The default distributed backend: ``Runner(executor="distributed",
    workers=N)`` spawns N of these against its own coordinator. The
    child's ``PYTHONPATH`` is prefixed with this package's source root so
    the spawn works from a source checkout without installation, and a
    wildcard listen address is rewritten to loopback for the dial-out.

    ``role`` names the child's seeded chaos stream (``REPRO_CHAOS_ROLE``):
    the Runner hands each spawned worker — including respawn replacements
    — a distinct ``worker-N``, so a fleet under ``REPRO_CHAOS`` draws
    from partitioned fault streams instead of failing in lockstep, while
    the whole run stays replayable from one seed.
    """
    host, port = address
    if host in ("0.0.0.0", "::", ""):
        host = "127.0.0.1"
    environ = dict(os.environ if env is None else env)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = environ.get("PYTHONPATH")
    environ["PYTHONPATH"] = (
        src_root + (os.pathsep + existing if existing else "")
    )
    if role is not None:
        environ["REPRO_CHAOS_ROLE"] = role
    if secret is not None:
        # `repro serve --workers N --secret-file ...` spawns its fleet
        # with the file-provided secret; env-provided secrets inherit
        # through os.environ without this.
        environ["REPRO_SECRET"] = secret.decode("utf-8")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.distrib.worker", f"{host}:{port}"],
        env=environ,
        stdout=subprocess.DEVNULL,
    )
