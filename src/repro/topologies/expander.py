"""Static expander-graph topology (paper section 2.3, u=7 baseline).

In an expander-based datacenter each ToR dedicates ``u`` of its ``k`` ports
to direct ToR-to-ToR links (more up than down, ``u > d``) and the remaining
``d = k - u`` to hosts. We construct the inter-ToR graph as the union of
``u`` disjoint random perfect matchings — a random ``u``-regular graph, the
same family Opera's slices are drawn from — retrying at design time until
the realization is connected.

The paper's cost-equivalent baseline for the 648-host Opera network is the
650-host ``u = 7`` expander: ``k = 12`` ToRs with 5 hosts and 7 inter-ToR
links each, across 130 racks.
"""

from __future__ import annotations

import random

from ..core.matchings import Matching
from ..core.routing import SliceRoutes

__all__ = ["ExpanderTopology", "sample_disjoint_matchings"]


def sample_disjoint_matchings(
    n: int, count: int, rng: random.Random, max_attempts: int = 200
) -> list[Matching]:
    """``count`` disjoint random perfect matchings on ``n`` vertices.

    Randomized greedy per matching with whole-set retries; for the small
    ``count`` values used by expander construction (u of ~5-8 out of n-1)
    this succeeds almost immediately.
    """
    if n <= 0 or n % 2:
        raise ValueError(f"vertex count must be positive and even, got {n}")
    if count > n - 1:
        raise ValueError(f"cannot pack {count} disjoint matchings into K_{n}")
    for _ in range(max_attempts):
        used: set[tuple[int, int]] = set()
        out: list[Matching] = []
        for _color in range(count):
            matching = _one_matching(n, used, rng)
            if matching is None:
                break
            out.append(matching)
            for v in range(n):
                used.add((min(v, matching[v]), max(v, matching[v])))
        if len(out) == count:
            return out
    raise ValueError(f"failed to sample {count} disjoint matchings on {n} vertices")


def _one_matching(
    n: int, used: set[tuple[int, int]], rng: random.Random, attempts: int = 50
) -> Matching | None:
    for _ in range(attempts):
        order = list(range(n))
        rng.shuffle(order)
        partner = [-1] * n
        ok = True
        for v in order:
            if partner[v] >= 0:
                continue
            candidates = [
                w
                for w in range(n)
                if w != v
                and partner[w] < 0
                and (min(v, w), max(v, w)) not in used
            ]
            if not candidates:
                ok = False
                break
            w = rng.choice(candidates)
            partner[v] = w
            partner[w] = v
        if ok:
            return tuple(partner)
    return None


class ExpanderTopology:
    """A static random-regular expander network.

    Parameters
    ----------
    n_racks:
        Number of ToRs (even).
    uplinks:
        Inter-ToR links per ToR (``u``); the graph is ``u``-regular.
    hosts_per_rack:
        Hosts per ToR (``d = k - u``).
    seed:
        Design-time randomness; regenerated until connected.
    """

    def __init__(
        self,
        n_racks: int,
        uplinks: int,
        hosts_per_rack: int,
        seed: int | None = 0,
        max_attempts: int = 200,
    ) -> None:
        if uplinks < 3:
            raise ValueError("expanders need u >= 3 for connectivity w.h.p.")
        if hosts_per_rack < 1:
            raise ValueError("each rack needs at least one host")
        self.n_racks = n_racks
        self.uplinks = uplinks
        self.hosts_per_rack = hosts_per_rack
        rng = random.Random(seed)
        for _ in range(max_attempts):
            self.matchings = sample_disjoint_matchings(n_racks, uplinks, rng)
            self._routes = SliceRoutes(self._build_adjacency())
            if self._routes.reachable_pairs() == n_racks * (n_racks - 1):
                break
        else:
            raise ValueError("no connected expander realization found")

    def _build_adjacency(self) -> list[list[tuple[int, int]]]:
        adj: list[list[tuple[int, int]]] = [[] for _ in range(self.n_racks)]
        for port, matching in enumerate(self.matchings):
            for a in range(self.n_racks):
                b = matching[a]
                if a < b:
                    adj[a].append((b, port))
                    adj[b].append((a, port))
        return adj

    # ----------------------------------------------------------------- shape

    @property
    def k(self) -> int:
        """ToR radix implied by the provisioning."""
        return self.uplinks + self.hosts_per_rack

    @property
    def n_hosts(self) -> int:
        return self.n_racks * self.hosts_per_rack

    def host_rack(self, host: int) -> int:
        if not 0 <= host < self.n_hosts:
            raise ValueError(f"host {host} out of range")
        return host // self.hosts_per_rack

    # --------------------------------------------------------------- routing

    @property
    def routes(self) -> SliceRoutes:
        """All-pairs shortest-path state over the static graph."""
        return self._routes

    @property
    def adjacency(self) -> list[list[tuple[int, int]]]:
        return self._routes.adjacency

    def path_length_counts(self) -> dict[int, int]:
        """Histogram of inter-rack shortest-path hop counts (Figure 4)."""
        return self._routes.path_length_counts()

    def average_path_length(self) -> float:
        counts = self.path_length_counts()
        total = sum(counts.values())
        return sum(h * c for h, c in counts.items()) / total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExpanderTopology(racks={self.n_racks}, u={self.uplinks}, "
            f"d={self.hosts_per_rack}, hosts={self.n_hosts})"
        )
