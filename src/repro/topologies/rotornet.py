"""RotorNet baseline (Mellette et al., SIGCOMM 2017; paper section 5.1).

RotorNet is Opera's closest ancestor: ToR uplinks connect to rotor circuit
switches that cycle through fixed matchings, and bulk traffic uses RotorLB
(direct + two-hop Valiant load balancing). The differences we model:

* **Lockstep reconfiguration** — all rotor switches advance simultaneously
  at every slice boundary (Figure 3a), so there is no always-on multi-hop
  connectivity; during reconfiguration the whole fabric is dark, and the
  cycle is ``n_racks / u`` slices (u matchings are live at once).
* **No low-latency service** — a *non-hybrid* RotorNet sends even small
  flows through buffered rotor circuits (three orders of magnitude slower
  for short flows, Figure 7c); a *hybrid* RotorNet instead diverts one of
  the ``u`` uplinks to a separate packet-switched fabric, at 1.33x cost.

The schedule reuses Opera's factorization machinery, so every rack pair is
directly connected exactly once per cycle.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.lifting import lifted_random_factorization
from ..core.matchings import Matching, verify_factorization

__all__ = ["RotorNetSchedule", "RotorNetTopology"]


class RotorNetSchedule:
    """Lockstep rotor schedule: all switches advance at every boundary."""

    def __init__(
        self,
        n_racks: int,
        n_switches: int,
        seed: int | None = 0,
        factorization: Sequence[Matching] | None = None,
        validate: bool = True,
    ) -> None:
        if n_switches <= 0:
            raise ValueError("need at least one rotor switch")
        if n_racks % n_switches:
            raise ValueError(
                f"{n_racks} racks not divisible by {n_switches} switches"
            )
        self.n_racks = n_racks
        self.n_switches = n_switches
        rng = random.Random(seed)
        if factorization is None:
            factorization = lifted_random_factorization(n_racks, rng)
        else:
            factorization = list(factorization)
        if validate:
            verify_factorization(factorization, n_racks)
        self.matchings: list[Matching] = list(factorization)
        order = list(range(n_racks))
        rng.shuffle(order)
        per_switch = n_racks // n_switches
        self._switch_matchings = [
            order[w * per_switch : (w + 1) * per_switch]
            for w in range(n_switches)
        ]

    @property
    def matchings_per_switch(self) -> int:
        return self.n_racks // self.n_switches

    @property
    def cycle_slices(self) -> int:
        """u matchings are live simultaneously, so the cycle is N/u slices."""
        return self.matchings_per_switch

    def matching_of(self, switch: int, slice_index: int) -> Matching:
        idx = slice_index % self.cycle_slices
        return self.matchings[self._switch_matchings[switch][idx]]

    def neighbors(self, rack: int, slice_index: int) -> list[tuple[int, int]]:
        """``(peer, switch)`` circuits for ``rack`` during a slice."""
        out = []
        for w in range(self.n_switches):
            peer = self.matching_of(w, slice_index)[rack]
            if peer != rack:
                out.append((peer, w))
        return out

    def direct_switch(self, rack_a: int, rack_b: int, slice_index: int) -> int | None:
        for w in range(self.n_switches):
            if self.matching_of(w, slice_index)[rack_a] == rack_b:
                return w
        return None

    def direct_slices(self, rack_a: int, rack_b: int) -> tuple[int, ...]:
        if rack_a == rack_b:
            raise ValueError("a rack has no circuit to itself")
        return tuple(
            s
            for s in range(self.cycle_slices)
            if self.direct_switch(rack_a, rack_b, s) is not None
        )

    def verify_cycle_connectivity(self) -> None:
        covered: set[tuple[int, int]] = set()
        for s in range(self.cycle_slices):
            for w in range(self.n_switches):
                matching = self.matching_of(w, s)
                for a in range(self.n_racks):
                    b = matching[a]
                    if a < b:
                        covered.add((a, b))
        want = self.n_racks * (self.n_racks - 1) // 2
        if len(covered) != want:
            raise AssertionError(
                f"cycle covers {len(covered)} rack pairs, expected {want}"
            )


class RotorNetTopology:
    """A RotorNet deployment: rotor uplinks plus an optional hybrid fabric.

    Parameters
    ----------
    n_racks, hosts_per_rack:
        Shape; ToR radix is ``hosts_per_rack + uplinks (+ 1 if hybrid)``.
    n_rotor_switches:
        Rotor uplinks per ToR.
    hybrid:
        When set, one additional uplink per ToR faces a packet-switched
        fabric used exclusively by low-latency traffic (the paper models
        this variant at 1.33x the cost of the all-optical network).
    """

    def __init__(
        self,
        n_racks: int,
        n_rotor_switches: int,
        hosts_per_rack: int,
        hybrid: bool = False,
        seed: int | None = 0,
    ) -> None:
        self.schedule = RotorNetSchedule(n_racks, n_rotor_switches, seed=seed)
        self.n_racks = n_racks
        self.n_rotor_switches = n_rotor_switches
        self.hosts_per_rack = hosts_per_rack
        self.hybrid = hybrid

    @property
    def n_hosts(self) -> int:
        return self.n_racks * self.hosts_per_rack

    @property
    def packet_uplinks_per_rack(self) -> int:
        return 1 if self.hybrid else 0

    @property
    def cost_factor(self) -> float:
        """Approximate cost relative to the non-hybrid network (section 5.1)."""
        if not self.hybrid:
            return 1.0
        return (self.n_rotor_switches + 2) / (self.n_rotor_switches + 0.5)

    def host_rack(self, host: int) -> int:
        if not 0 <= host < self.n_hosts:
            raise ValueError(f"host {host} out of range")
        return host // self.hosts_per_rack

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "hybrid" if self.hybrid else "non-hybrid"
        return (
            f"RotorNetTopology({kind}, racks={self.n_racks}, "
            f"rotors={self.n_rotor_switches}, hosts={self.n_hosts})"
        )
