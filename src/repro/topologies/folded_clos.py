"""Three-tier folded-Clos (fat-tree) topology with ToR oversubscription.

The paper's cost-equivalent packet-switched baseline (sections 2.3 and 5) is
an M:1 oversubscribed folded Clos built from ``k``-port switches:

* **ToR tier** — each ToR serves ``d = k * F / (F + 1)`` hosts with
  ``u = k / (F + 1)`` uplinks (an ``F : 1`` oversubscription);
* **aggregation tier** — pods of ``k/2`` ToRs and ``u`` aggregation
  switches; every ToR has one link to every aggregation switch in its pod;
* **core tier** — aggregation switches use their remaining ``k/2`` ports to
  reach ``k/2`` core switches; core switch ``g*(k/2)+i`` links once to the
  aggregation switch at position ``g`` of every pod.

At full scale (``k`` pods) this hosts ``(F/(F+1)) * k^3 / 2`` servers — with
``k = 12`` and ``F = 3`` exactly the 648 hosts of the paper's comparison,
and ``F = 3`` matches its 3:1 oversubscription. Routing is ECMP over the
(2 intra-pod / 4 cross-pod switch-hop) shortest paths.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FoldedClos", "ClosNode"]


@dataclass(frozen=True)
class ClosNode:
    """A switch in the folded Clos, identified by tier and index."""

    tier: str  # "tor" | "agg" | "core"
    index: int


class FoldedClos:
    """An ``F:1``-oversubscribed three-tier folded Clos of ``k``-port switches.

    Parameters
    ----------
    k:
        Switch radix (all tiers use the same radix).
    oversubscription:
        ``F`` — the ratio of ToR downlinks to uplinks. ``F + 1`` must
        divide ``k``. ``F = 1`` gives a fully-provisioned fat tree.
    n_pods:
        Number of pods; defaults to the maximum ``k``.
    """

    def __init__(self, k: int, oversubscription: int = 3, n_pods: int | None = None):
        if k < 4 or k % 2:
            raise ValueError(f"switch radix must be an even integer >= 4, got {k}")
        if oversubscription < 1:
            raise ValueError("oversubscription factor must be >= 1")
        if k % (oversubscription + 1):
            raise ValueError(
                f"F+1={oversubscription + 1} must divide the radix k={k}"
            )
        self.k = k
        self.oversubscription = oversubscription
        self.tor_uplinks = k // (oversubscription + 1)
        self.hosts_per_rack = k - self.tor_uplinks
        self.tors_per_pod = k // 2
        self.aggs_per_pod = self.tor_uplinks
        self.n_pods = n_pods if n_pods is not None else k
        if not 1 <= self.n_pods <= k:
            raise ValueError(f"pod count must be in [1, {k}]")
        self.n_racks = self.n_pods * self.tors_per_pod
        self.cores_per_group = k // 2
        self.n_cores = self.aggs_per_pod * self.cores_per_group
        self.n_aggs = self.n_pods * self.aggs_per_pod

    # ----------------------------------------------------------------- shape

    @property
    def n_hosts(self) -> int:
        return self.n_racks * self.hosts_per_rack

    @property
    def n_switches(self) -> int:
        """Total packet switches (ToR + aggregation + core)."""
        return self.n_racks + self.n_aggs + self.n_cores

    def host_rack(self, host: int) -> int:
        if not 0 <= host < self.n_hosts:
            raise ValueError(f"host {host} out of range")
        return host // self.hosts_per_rack

    def pod_of_rack(self, rack: int) -> int:
        if not 0 <= rack < self.n_racks:
            raise ValueError(f"rack {rack} out of range")
        return rack // self.tors_per_pod

    # ------------------------------------------------------------- structure

    def aggs_of_pod(self, pod: int) -> range:
        return range(pod * self.aggs_per_pod, (pod + 1) * self.aggs_per_pod)

    def agg_position(self, agg: int) -> int:
        """Position of an aggregation switch within its pod (its group)."""
        return agg % self.aggs_per_pod

    def cores_of_group(self, group: int) -> range:
        return range(group * self.cores_per_group, (group + 1) * self.cores_per_group)

    def tor_agg_links(self, rack: int) -> list[int]:
        """Aggregation switches with a direct link from this ToR."""
        return list(self.aggs_of_pod(self.pod_of_rack(rack)))

    def agg_core_links(self, agg: int) -> list[int]:
        """Core switches with a direct link from this aggregation switch."""
        return list(self.cores_of_group(self.agg_position(agg)))

    def core_agg_links(self, core: int) -> list[int]:
        """Aggregation switches (one per pod) linked to this core switch."""
        group = core // self.cores_per_group
        return [pod * self.aggs_per_pod + group for pod in range(self.n_pods)]

    # --------------------------------------------------------------- routing

    def rack_distance(self, rack_a: int, rack_b: int) -> int:
        """Switch-to-switch hops between two ToRs (0 same, 2 pod, 4 core)."""
        if rack_a == rack_b:
            return 0
        if self.pod_of_rack(rack_a) == self.pod_of_rack(rack_b):
            return 2
        return 4

    def path_length_counts(self) -> dict[int, int]:
        """Histogram of inter-rack hop counts over ordered pairs (Fig. 4)."""
        same_pod = self.tors_per_pod - 1
        cross = self.n_racks - self.tors_per_pod
        return {
            2: self.n_racks * same_pod,
            4: self.n_racks * cross,
        }

    def average_path_length(self) -> float:
        counts = self.path_length_counts()
        total = sum(counts.values())
        return sum(h * c for h, c in counts.items()) / total

    def ecmp_paths(self, rack_a: int, rack_b: int) -> int:
        """Number of equal-cost shortest paths between two ToRs."""
        if rack_a == rack_b:
            return 0
        if self.pod_of_rack(rack_a) == self.pod_of_rack(rack_b):
            return self.aggs_per_pod
        return self.aggs_per_pod * self.cores_per_group

    # ------------------------------------------------------------- capacity

    @property
    def bisection_fraction(self) -> float:
        """Cross-network capacity per host-link (1/F for this design)."""
        return 1.0 / self.oversubscription

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FoldedClos(k={self.k}, {self.oversubscription}:1, "
            f"pods={self.n_pods}, racks={self.n_racks}, hosts={self.n_hosts})"
        )
