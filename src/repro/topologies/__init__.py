"""Cost-equivalent baseline topologies: folded Clos, expander, RotorNet."""

from .expander import ExpanderTopology, sample_disjoint_matchings
from .folded_clos import ClosNode, FoldedClos
from .rotornet import RotorNetSchedule, RotorNetTopology

__all__ = [
    "ExpanderTopology",
    "sample_disjoint_matchings",
    "ClosNode",
    "FoldedClos",
    "RotorNetSchedule",
    "RotorNetTopology",
]
