"""Content-addressed on-disk result cache.

A cache entry is addressed by the sha256 of ``(format version, scenario
name, canonical params JSON)`` — re-running any scenario with the same
parameters is a file read instead of a simulation. Entries live under
``$REPRO_CACHE_DIR`` (default ``~/.cache/opera-repro``) as::

    <root>/<scenario>/<hash>.json

one human-inspectable JSON document per run, written atomically so a
killed worker never leaves a torn entry behind.

Sharded scenarios additionally cache each *cell* under::

    <root>/<scenario>/cells/<hash>.json

addressed by the sha256 of ``(format version, scenario, cell key, cell
params)``. Cell params alone determine a cell's value, so a cell computed
for one sweep point is a hit for every other sweep point that shares it,
and a killed paper-scale sweep resumes from the cells that finished
instead of restarting.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

from .encode import canonical_json, content_hash

__all__ = ["ResultCache", "default_cache_dir", "CACHE_FORMAT_VERSION"]

logger = logging.getLogger(__name__)

#: Bump to invalidate every existing entry when the stored layout changes.
CACHE_FORMAT_VERSION = 1

#: Run-scoped infrastructure directories living next to the scenario
#: stores: write-ahead journals (``repro.distrib.journal``) and sweep
#: traces (``repro.obs.trace``). Their files are keyed by *run*, not by
#: scenario, so scenario-scoped operations treat them by age, not name.
RUN_FILE_DIRS = ("_journal", "_trace")

#: Age past which a journal/trace file is considered stale garbage: a
#: week comfortably outlives any resumable run, and anything older is
#: forensic residue nobody is coming back for.
STALE_RUN_FILE_S = 7 * 24 * 3600.0


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/opera-repro").expanduser()


class ResultCache:
    """JSON result store keyed by scenario name + exact parameters."""

    def __init__(self, root: str | os.PathLike[str] | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def key(self, name: str, params: Mapping[str, Any]) -> str:
        return content_hash(
            {
                "version": CACHE_FORMAT_VERSION,
                "scenario": name,
                "params": dict(params),
            }
        )

    def path(self, name: str, params: Mapping[str, Any]) -> Path:
        return self.root / name / f"{self.key(name, params)}.json"

    def _load(self, path: Path) -> dict[str, Any] | None:
        """Decode one cache file; quarantine it on corruption.

        A file that exists but will not parse (truncated by a dying
        worker before atomic writes, a torn filesystem, bit rot, or
        non-JSON bytes that are not even UTF-8) is renamed to
        ``<name>.json.corrupt`` and reported as a miss: the sweep
        recomputes that entry instead of crashing mid-run, and the moved
        file stays on disk for inspection (``repro cache stats`` counts
        them). A document that parses but is not a JSON object is
        corrupt too — every cache format this store has ever written is
        an object.
        """
        try:
            with path.open("r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except OSError:
            return None  # genuine miss (or unreadable: nothing to rename)
        except ValueError:
            # json.JSONDecodeError and UnicodeDecodeError both subclass
            # ValueError; either way the bytes are not a cache entry.
            self._quarantine(path)
            return None
        if not isinstance(doc, dict):
            self._quarantine(path)
            return None
        return doc

    def _quarantine(self, path: Path) -> None:
        logger.warning("quarantining corrupt cache entry %s", path)
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass  # raced with a concurrent quarantine/clear; miss either way

    def get(self, name: str, params: Mapping[str, Any]) -> dict[str, Any] | None:
        """The stored document, or ``None`` on miss/corruption."""
        return self._load(self.path(name, params))

    def put(
        self, name: str, params: Mapping[str, Any], document: Mapping[str, Any]
    ) -> Path:
        """Atomically persist ``document`` for this (name, params) key."""
        path = self.path(name, params)
        path.parent.mkdir(parents=True, exist_ok=True)
        return self._write(path, document)

    def _write(self, path: Path, document: Mapping[str, Any]) -> Path:
        body = json.dumps(dict(document), indent=1, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(body)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------ cell store

    def cell_key(
        self, name: str, cell: str, cell_params: Mapping[str, Any]
    ) -> str:
        return content_hash(
            {
                "version": CACHE_FORMAT_VERSION,
                "scenario": name,
                "cell": cell,
                "params": dict(cell_params),
            }
        )

    def cell_path(
        self, name: str, cell: str, cell_params: Mapping[str, Any]
    ) -> Path:
        return (
            self.root / name / "cells"
            / f"{self.cell_key(name, cell, cell_params)}.json"
        )

    def get_cell(
        self, name: str, cell: str, cell_params: Mapping[str, Any]
    ) -> dict[str, Any] | None:
        """The stored cell document, or ``None`` on miss/corruption."""
        return self._load(self.cell_path(name, cell, cell_params))

    def put_cell(
        self,
        name: str,
        cell: str,
        cell_params: Mapping[str, Any],
        document: Mapping[str, Any],
    ) -> Path:
        """Atomically persist one cell's document."""
        path = self.cell_path(name, cell, cell_params)
        path.parent.mkdir(parents=True, exist_ok=True)
        return self._write(path, document)

    def cell_duration_records(
        self, name: str
    ) -> list[tuple[str, dict[str, Any], float]]:
        """Every recorded cell duration for one scenario, with context.

        Yields ``(cell key, cell params, wall seconds)`` per readable cell
        document (each records the ``duration_s`` its computation took —
        worker-side, so remote and local cells measure alike). The params
        travel along so consumers can restrict history to *comparable*
        cells: a ci-scale ``opera@0.1`` says nothing about the paper-scale
        cell of the same name.
        """
        records: list[tuple[str, dict[str, Any], float]] = []
        for path in (self.root / name / "cells").glob("*.json"):
            doc = self._load(path)
            if doc is None:
                continue
            key = doc.get("cell")
            params = doc.get("params")
            duration = doc.get("duration_s")
            if (
                not isinstance(key, str)
                or not isinstance(params, dict)
                or not isinstance(duration, (int, float))
                or isinstance(duration, bool)
                or duration <= 0
            ):
                continue
            records.append((key, params, float(duration)))
        return records

    def cell_durations(self, name: str) -> dict[str, float]:
        """Mean recorded wall seconds per cell key for one scenario.

        The coarse, params-blind view of :meth:`cell_duration_records` —
        convenient when all of a scenario's history shares one shape
        (e.g. feeding :func:`repro.experiments.fctsim.adaptive_cell_cost`
        for a single-scale workflow). The Runner's adaptive ordering uses
        the records directly, filtered to params-comparable cells.
        """
        totals: dict[str, float] = {}
        counts: dict[str, int] = {}
        for key, _params, duration in self.cell_duration_records(name):
            totals[key] = totals.get(key, 0.0) + duration
            counts[key] = counts.get(key, 0) + 1
        return {key: totals[key] / counts[key] for key in totals}

    # -------------------------------------------------------- introspection

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-scenario entry counts and on-disk bytes.

        ``{scenario: {"results": n, "cells": n, "bytes": n, "corrupt":
        n}}`` — the ``repro cache stats`` view, so paper-scale sweep
        state is inspectable without spelunking the cache directory.
        ``corrupt`` counts files quarantined as ``*.corrupt`` by
        :meth:`_load`. Underscore-prefixed directories (the run-journal
        store, ``_journal``) are infrastructure, not scenarios, and are
        skipped.
        """
        out: dict[str, dict[str, int]] = {}
        if not self.root.is_dir():
            return out
        for sc_dir in sorted(self.root.iterdir()):
            if not sc_dir.is_dir() or sc_dir.name.startswith("_"):
                continue
            results = cells = size = corrupt = 0
            for path in sc_dir.rglob("*.json"):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                if path.parent.name == "cells":
                    cells += 1
                else:
                    results += 1
            for path in sc_dir.rglob("*.corrupt"):
                corrupt += 1
            out[sc_dir.name] = {
                "results": results,
                "cells": cells,
                "bytes": size,
                "corrupt": corrupt,
            }
        return out

    def run_file_stats(self) -> dict[str, dict[str, Any]]:
        """Journal/trace inventory for ``repro cache stats``.

        ``{"_journal": {"files": n, "bytes": n, "oldest_age_s": x}, ...}``
        — only directories that exist and hold files appear, and
        ``oldest_age_s`` is measured from each file's mtime so operators
        can see at a glance whether run files are accumulating past the
        :data:`STALE_RUN_FILE_S` horizon the clear-time GC uses.
        """
        import time

        out: dict[str, dict[str, Any]] = {}
        now = time.time()
        for dirname in RUN_FILE_DIRS:
            directory = self.root / dirname
            if not directory.is_dir():
                continue
            files = size = 0
            oldest: float | None = None
            for path in directory.glob("*.jsonl"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                files += 1
                size += stat.st_size
                age = max(now - stat.st_mtime, 0.0)
                if oldest is None or age > oldest:
                    oldest = age
            if files:
                out[dirname] = {
                    "files": files,
                    "bytes": size,
                    "oldest_age_s": oldest,
                }
        return out

    def gc_run_files(self, max_age_s: float | None = None) -> int:
        """Delete journal/trace files older than ``max_age_s`` seconds.

        ``None`` removes them all. Returns the number of files removed.
        Age comes from mtime — a journal being appended to right now is
        always fresh, so an in-flight run can never lose its write-ahead
        state to a concurrent ``cache clear``.
        """
        import time

        removed = 0
        now = time.time()
        for dirname in RUN_FILE_DIRS:
            directory = self.root / dirname
            if not directory.is_dir():
                continue
            for path in directory.glob("*.jsonl"):
                try:
                    if (
                        max_age_s is not None
                        and now - path.stat().st_mtime <= max_age_s
                    ):
                        continue
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def entries(self, name: str) -> list[dict[str, Any]]:
        """Decoded documents for one scenario: merged results, then cells.

        Each item: ``{"path": Path, "kind": "result"|"cell", "doc": ...}``
        (unreadable/corrupt files are skipped, matching :meth:`get`).
        """
        out: list[dict[str, Any]] = []
        roots = [
            (self.root / name, "result"),
            (self.root / name / "cells", "cell"),
        ]
        for root, kind in roots:
            for path in sorted(root.glob("*.json")):
                doc = self._load(path)
                if doc is None:
                    continue
                out.append({"path": path, "kind": kind, "doc": doc})
        return out

    def clear(self, name: str | None = None) -> int:
        """Delete entries (all, or one scenario's); returns count removed.

        Quarantined ``*.corrupt`` files and run journals (``*.jsonl``)
        go too — ``clear`` means "forget everything about this
        scenario's past runs", and stale journal state resurrecting into
        a fresh sweep would be worse than recomputing. A *scenario-scoped*
        clear cannot safely remove run files by name (journals and traces
        are keyed by run, spanning scenarios), so it garbage-collects the
        ones stale past :data:`STALE_RUN_FILE_S` instead.
        """
        removed = 0
        roots = [self.root / name] if name else [self.root]
        for root in roots:
            if not root.is_dir():
                continue
            for pattern in ("*.json", "*.corrupt", "*.jsonl"):
                for entry in root.rglob(pattern):
                    try:
                        entry.unlink()
                        removed += 1
                    except OSError:
                        pass
        if name:
            removed += self.gc_run_files(STALE_RUN_FILE_S)
        return removed

    # Convenience used by tests and the CLI's cache-status line.
    def has(self, name: str, params: Mapping[str, Any]) -> bool:
        return self.path(name, params).is_file()

    def params_json(self, params: Mapping[str, Any]) -> str:
        return canonical_json(dict(params))
