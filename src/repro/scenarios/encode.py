"""Deterministic JSON encoding of experiment results.

Experiment ``run()`` functions return plain-python data — dataclasses,
dicts (sometimes with tuple keys), tuples, lists, numbers. The cache and
the golden-regression fixtures need a canonical JSON form that round-trips
bit-identically across runs, so the encoding is structural and explicit:

* dataclasses encode as ``{field: value}`` in field order,
* mappings with non-string keys encode as ``{"__pairs__": [[k, v], ...]}``
  in insertion order (python dicts preserve it),
* tuples and lists both encode as JSON arrays,
* sets encode sorted by ``repr`` for determinism.

Objects outside this vocabulary raise :class:`EncodeError`; callers treat
that as "rows-only cacheable" rather than guessing at a lossy repr.

Two encodings live here:

* :func:`to_jsonable` — the *lossy* canonical form above, used for cache
  keys, payloads and golden fixtures (tuples become arrays, dataclasses
  become plain dicts).
* :func:`to_portable` / :func:`from_portable` — a *self-describing* form
  that reconstructs the original python value exactly (tuples stay tuples,
  dataclasses are re-instantiated by import path). The sharded runner uses
  it to move cell results across process boundaries and in/out of the cell
  cache without the merge step ever seeing a lossy decode.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
from typing import Any

__all__ = [
    "EncodeError",
    "to_jsonable",
    "to_portable",
    "from_portable",
    "canonical_json",
    "content_hash",
]


class EncodeError(TypeError):
    """A value has no deterministic JSON encoding."""


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` to JSON-encodable python data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value):
            return {k: to_jsonable(v) for k, v in value.items()}
        return {
            "__pairs__": [[to_jsonable(k), to_jsonable(v)] for k, v in value.items()]
        }
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return [to_jsonable(v) for v in sorted(value, key=repr)]
    if isinstance(value, range):
        return [value.start, value.stop, value.step]
    raise EncodeError(f"no deterministic JSON encoding for {type(value).__name__}")


#: Keys that mark a typed node in the portable encoding. A plain dict
#: containing any of these as a key is escaped through ``__pairs__`` so the
#: decoder never mistakes data for structure.
_PORTABLE_MARKERS = frozenset(
    {"__tuple__", "__set__", "__frozenset__", "__pairs__", "__dataclass__",
     "__range__"}
)


def to_portable(value: Any) -> Any:
    """Encode ``value`` as JSON-able data that :func:`from_portable` inverts.

    Unlike :func:`to_jsonable` this form is self-describing: tuples, sets,
    ranges, tuple-keyed dicts and dataclass instances all decode back to
    the exact python value (dataclasses by ``module:qualname`` import, so
    the type must be importable where it is decoded — true for every
    experiment result type, which lives in a ``repro`` module).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "__dataclass__": f"{cls.__module__}:{cls.__qualname__}",
            "fields": {
                f.name: to_portable(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and not (
            _PORTABLE_MARKERS & value.keys()
        ):
            return {k: to_portable(v) for k, v in value.items()}
        return {
            "__pairs__": [
                [to_portable(k), to_portable(v)] for k, v in value.items()
            ]
        }
    if isinstance(value, tuple):
        return {"__tuple__": [to_portable(v) for v in value]}
    if isinstance(value, list):
        return [to_portable(v) for v in value]
    if isinstance(value, frozenset):
        return {"__frozenset__": [to_portable(v) for v in sorted(value, key=repr)]}
    if isinstance(value, set):
        return {"__set__": [to_portable(v) for v in sorted(value, key=repr)]}
    if isinstance(value, range):
        return {"__range__": [value.start, value.stop, value.step]}
    raise EncodeError(f"no portable encoding for {type(value).__name__}")


def _resolve_dataclass(path: str) -> type:
    module_name, _, qualname = path.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not (isinstance(obj, type) and dataclasses.is_dataclass(obj)):
        raise EncodeError(f"{path!r} does not name a dataclass")
    return obj


def from_portable(data: Any) -> Any:
    """Decode :func:`to_portable` output back to the original python value."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [from_portable(v) for v in data]
    if isinstance(data, dict):
        if "__dataclass__" in data:
            cls = _resolve_dataclass(data["__dataclass__"])
            return cls(**{
                k: from_portable(v) for k, v in data["fields"].items()
            })
        if "__tuple__" in data:
            return tuple(from_portable(v) for v in data["__tuple__"])
        if "__set__" in data:
            return {from_portable(v) for v in data["__set__"]}
        if "__frozenset__" in data:
            return frozenset(from_portable(v) for v in data["__frozenset__"])
        if "__pairs__" in data:
            return {
                from_portable(k): from_portable(v) for k, v in data["__pairs__"]
            }
        if "__range__" in data:
            start, stop, step = data["__range__"]
            return range(start, stop, step)
        return {k: from_portable(v) for k, v in data.items()}
    raise EncodeError(f"cannot decode portable node of type {type(data).__name__}")


def canonical_json(value: Any) -> str:
    """Canonical (sorted-key, compact) JSON text of ``to_jsonable(value)``."""
    return json.dumps(
        to_jsonable(value), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_hash(value: Any) -> str:
    """Stable sha256 hex digest of a value's canonical JSON."""
    import hashlib

    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
