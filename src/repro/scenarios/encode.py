"""Deterministic JSON encoding of experiment results.

Experiment ``run()`` functions return plain-python data — dataclasses,
dicts (sometimes with tuple keys), tuples, lists, numbers. The cache and
the golden-regression fixtures need a canonical JSON form that round-trips
bit-identically across runs, so the encoding is structural and explicit:

* dataclasses encode as ``{field: value}`` in field order,
* mappings with non-string keys encode as ``{"__pairs__": [[k, v], ...]}``
  in insertion order (python dicts preserve it),
* tuples and lists both encode as JSON arrays,
* sets encode sorted by ``repr`` for determinism.

Objects outside this vocabulary raise :class:`EncodeError`; callers treat
that as "rows-only cacheable" rather than guessing at a lossy repr.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

__all__ = ["EncodeError", "to_jsonable", "canonical_json", "content_hash"]


class EncodeError(TypeError):
    """A value has no deterministic JSON encoding."""


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` to JSON-encodable python data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value):
            return {k: to_jsonable(v) for k, v in value.items()}
        return {
            "__pairs__": [[to_jsonable(k), to_jsonable(v)] for k, v in value.items()]
        }
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return [to_jsonable(v) for v in sorted(value, key=repr)]
    if isinstance(value, range):
        return [value.start, value.stop, value.step]
    raise EncodeError(f"no deterministic JSON encoding for {type(value).__name__}")


def canonical_json(value: Any) -> str:
    """Canonical (sorted-key, compact) JSON text of ``to_jsonable(value)``."""
    return json.dumps(
        to_jsonable(value), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_hash(value: Any) -> str:
    """Stable sha256 hex digest of a value's canonical JSON."""
    import hashlib

    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
