"""Declarative scenario registry.

Every paper artifact (and any future workload) is described by a
:class:`Scenario`: a name, a parameter schema derived from the entry
point's signature, a set of tags (``analysis`` / ``fluid`` / ``packet``),
and a cost hint. Experiment modules register themselves with the
:func:`scenario` decorator::

    from ..scenarios import scenario

    @scenario("fig04", tags=("analysis", "graph"), cost="medium",
              title="path-length CDFs (Figure 4)")
    def run(k: int = 12, n_racks: int | None = None, seed: int = 0): ...

Registration is import-time and side-effect free beyond the registry
dict, so worker processes reconstruct the full registry simply by
importing :mod:`repro.experiments` (see :func:`load_builtin`).
"""

from __future__ import annotations

import fnmatch
import importlib
import inspect
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = [
    "Param",
    "Scenario",
    "ScenarioError",
    "scenario",
    "register",
    "get",
    "all_scenarios",
    "all_tags",
    "select",
    "load_builtin",
]

#: Recognised cost hints, cheapest first (used for ordering ``list`` output
#: and for scheduling expensive scenarios first in the worker pool).
COST_HINTS = ("cheap", "medium", "heavy")

_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


class ScenarioError(ValueError):
    """Unknown scenario, unknown parameter, or malformed override."""


@dataclass(frozen=True)
class Param:
    """One entry of a scenario's parameter schema."""

    name: str
    default: Any

    def coerce(self, text: str) -> Any:
        """Parse a ``--set name=value`` string to the default's type.

        Tuples parse as comma-separated element lists typed after the
        default tuple's first element; booleans accept ``true/false`` and
        friends; ``None`` defaults try int, then float, then keep the
        string (the literal ``none`` stays ``None``).
        """
        default = self.default
        try:
            if isinstance(default, bool):
                low = text.strip().lower()
                if low in _TRUE:
                    return True
                if low in _FALSE:
                    return False
                raise ValueError(f"not a boolean: {text!r}")
            if isinstance(default, int):
                return int(text)
            if isinstance(default, float):
                return float(text)
            if isinstance(default, (tuple, list)):
                elem = default[0] if len(default) else None
                parts = [p for p in (s.strip() for s in text.split(",")) if p]
                return tuple(_coerce_free(p, elem) for p in parts)
            if default is None:
                return _coerce_free(text, None)
            return text
        except ValueError as exc:
            raise ScenarioError(
                f"cannot parse {text!r} for parameter {self.name!r} "
                f"(default {default!r}): {exc}"
            ) from None


def _coerce_free(text: str, like: Any) -> Any:
    """Coerce ``text`` after an element exemplar, or by best effort."""
    if isinstance(like, bool):
        return Param("<elem>", like).coerce(text)
    if isinstance(like, int):
        return int(text)
    if isinstance(like, float):
        return float(text)
    if isinstance(like, str):
        return text
    if text.strip().lower() == "none":
        return None
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            pass
    return text


@dataclass(frozen=True)
class Scenario:
    """A registered, parameterized, tagged experiment entry point.

    ``sharder`` / ``cell_runner`` / ``merger`` name module-level hooks (like
    ``formatter``) that let the Runner decompose one run into independent,
    independently cached cells: ``sharder(**params)`` returns the
    :class:`~repro.scenarios.sharding.Cell` plan, ``cell_runner(**cell
    params)`` executes one cell, and ``merger(values, **params)`` folds the
    cell values (in plan order) back into the scenario's ordinary return
    value.
    """

    name: str
    func: Callable[..., Any]
    module: str
    description: str
    tags: tuple[str, ...] = ()
    cost: str = "cheap"
    params: dict[str, Param] = field(default_factory=dict)
    formatter: str = "format_rows"
    sharder: str | None = None
    cell_runner: str | None = None
    merger: str | None = None
    #: Alternate spellings that resolve to this scenario (e.g. the source
    #: module's name, so ``repro run fig07_datamining`` works).
    aliases: tuple[str, ...] = ()

    # ------------------------------------------------------------ parameters

    def defaults(self) -> dict[str, Any]:
        return {p.name: p.default for p in self.params.values()}

    def bind(
        self, overrides: Mapping[str, Any] | None = None, *, strict: bool = True
    ) -> dict[str, Any]:
        """Full parameter dict: schema defaults + ``overrides``.

        String override values are coerced to the schema's types; non-string
        values pass through unchanged (callers already hold python values).
        With ``strict`` off, keys the scenario doesn't accept are silently
        dropped (used when one ``--set`` applies across a selection).
        """
        params = self.defaults()
        for key, value in (overrides or {}).items():
            if key not in self.params:
                if strict:
                    raise ScenarioError(
                        f"scenario {self.name!r} has no parameter {key!r} "
                        f"(accepts: {', '.join(self.params) or 'none'})"
                    )
                continue
            if isinstance(value, str):
                value = self.params[key].coerce(value)
            params[key] = value
        return params

    def accepts(self, key: str) -> bool:
        return key in self.params

    # ------------------------------------------------------------- execution

    def execute(self, **params: Any) -> Any:
        """Run the underlying entry point with ``params``."""
        return self.func(**params)

    # -------------------------------------------------------------- sharding

    @property
    def shardable(self) -> bool:
        return self.sharder is not None

    def _hook(self, attr_name: str | None, role: str) -> Callable[..., Any]:
        fn = getattr(sys.modules[self.module], attr_name or "", None)
        if fn is None:
            raise ScenarioError(
                f"scenario {self.name!r}: {role} hook {attr_name!r} not found "
                f"in module {self.module!r}"
            )
        return fn

    def shard_plan(self, **params: Any) -> list[Any]:
        """The scenario's :class:`Cell` plan for ``params`` (validated)."""
        from .sharding import validate_plan

        plan = self._hook(self.sharder, "shards")(**params)
        return validate_plan(self.name, list(plan))

    def run_cell(self, **cell_params: Any) -> Any:
        """Execute one cell of a sharded run."""
        return self._hook(self.cell_runner, "cell")(**cell_params)

    def merge(self, values: Sequence[Any], **params: Any) -> Any:
        """Fold cell values (in plan order) into the scenario's value."""
        return self._hook(self.merger, "merge")(list(values), **params)

    def format(self, value: Any) -> list[str]:
        """Human-readable rows for a :meth:`execute` result."""
        formatter = getattr(sys.modules[self.module], self.formatter, None)
        if formatter is None:
            return [repr(value)]
        return formatter(value)

    def matches(self, token: str) -> bool:
        """True if ``token`` names this scenario (or an alias), exactly or
        as a glob."""
        return any(
            token == name or fnmatch.fnmatchcase(name, token)
            for name in (self.name, *self.aliases)
        )


_REGISTRY: dict[str, Scenario] = {}


def register(sc: Scenario) -> Scenario:
    """Insert (or replace, e.g. on module reload) a scenario."""
    _REGISTRY[sc.name] = sc
    return sc


def scenario(
    name: str,
    *,
    tags: Sequence[str] = (),
    cost: str = "cheap",
    title: str | None = None,
    defaults: Mapping[str, Any] | None = None,
    formatter: str = "format_rows",
    shards: str | None = None,
    cell: str | None = None,
    merge: str | None = None,
    aliases: Sequence[str] = (),
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator: register ``fn`` as scenario ``name``; returns ``fn``.

    The parameter schema is read from the signature (every keyword with a
    default becomes a :class:`Param`); ``defaults`` overrides individual
    schema defaults without touching the function's own (used where the
    registry wants a cheaper default than the library API, e.g. fig04's
    slice subsampling). ``title`` overrides the docstring-derived
    description. ``shards`` / ``cell`` / ``merge`` name the module-level
    shard hooks (all three or none); see :class:`Scenario`. ``aliases``
    are alternate selection spellings (conventionally the experiment
    module's name).
    """
    if cost not in COST_HINTS:
        raise ValueError(f"cost hint must be one of {COST_HINTS}, got {cost!r}")
    shard_hooks = (shards, cell, merge)
    if any(h is not None for h in shard_hooks) and not all(
        h is not None for h in shard_hooks
    ):
        raise ValueError(
            f"scenario {name!r}: shards/cell/merge must be declared together"
        )

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        params: dict[str, Param] = {}
        for p in inspect.signature(fn).parameters.values():
            if p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD):
                continue
            if p.default is inspect.Parameter.empty:
                raise ValueError(
                    f"scenario {name!r}: parameter {p.name!r} has no default; "
                    "scenario entry points must be fully defaulted"
                )
            params[p.name] = Param(p.name, p.default)
        for key, value in (defaults or {}).items():
            if key not in params:
                raise ValueError(
                    f"scenario {name!r}: defaults override unknown "
                    f"parameter {key!r}"
                )
            params[key] = Param(key, value)
        description = title or (inspect.getdoc(fn) or name).splitlines()[0]
        register(
            Scenario(
                name=name,
                func=fn,
                module=fn.__module__,
                description=description,
                tags=tuple(tags),
                cost=cost,
                params=params,
                formatter=formatter,
                sharder=shards,
                cell_runner=cell,
                merger=merge,
                aliases=tuple(aliases),
            )
        )
        return fn

    return decorate


def load_builtin() -> None:
    """Import every bundled experiment module (idempotent).

    Registration happens as a decorator side effect, so importing the
    :mod:`repro.experiments` package populates the registry — in the parent
    process and in every worker alike.
    """
    importlib.import_module("repro.experiments")


def get(name: str) -> Scenario:
    load_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        for sc in _REGISTRY.values():
            if name in sc.aliases:
                return sc
        known = ", ".join(sorted(_REGISTRY))
        raise ScenarioError(
            f"unknown scenario {name!r}; known: {known}"
        ) from None


def all_scenarios() -> list[Scenario]:
    """Every registered scenario, sorted by name."""
    load_builtin()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def all_tags() -> list[str]:
    load_builtin()
    return sorted({t for sc in _REGISTRY.values() for t in sc.tags})


def select(
    names: Iterable[str] = (), tags: Iterable[str] = ()
) -> list[Scenario]:
    """Scenarios matching any name/glob in ``names`` or any tag in ``tags``.

    Order follows the registry's sorted order; unknown names (that match
    nothing, even as a glob) and unknown tags raise :class:`ScenarioError`.
    """
    load_builtin()
    names = list(names)
    tags = list(tags)
    known_tags = set(all_tags())
    for tag in tags:
        if tag not in known_tags:
            raise ScenarioError(
                f"unknown tag {tag!r}; known: {', '.join(sorted(known_tags))}"
            )
    picked: list[Scenario] = []
    for sc in all_scenarios():
        if any(sc.matches(token) for token in names) or any(
            t in sc.tags for t in tags
        ):
            picked.append(sc)
    for token in names:
        if not any(sc.matches(token) for sc in picked):
            known = ", ".join(sorted(_REGISTRY))
            raise ScenarioError(f"unknown scenario {token!r}; known: {known}")
    return picked
