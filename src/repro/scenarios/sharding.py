"""Shard-axis declarations for scenarios with internal parallelism.

A grid-shaped scenario (fig07's ``(network, load)`` matrix, an ablation's
variant list) declares how to decompose one run into independent
:class:`Cell`\\ s via a module-level ``shards(**params)`` hook, how to run
one cell (``cell``) and how to fold the cell values back into the
scenario's ordinary return value (``merge``). The Runner fans cells out
across the worker pool alongside ordinary jobs and caches each cell under
its own content-addressed key, so an interrupted sweep resumes from the
cells that finished.

Contract (enforced by :func:`validate_plan` at decomposition time):

* cell keys are unique, stable strings — they are part of the cache key;
* cell params are plain JSON-able data (they cross process boundaries and
  are content-hashed);
* ``run(**params)`` must equal ``merge([cell(**c.params) for c in plan],
  **params)`` — the scenario modules guarantee this by implementing
  ``run`` *in terms of* the plan, and ``tests/test_sharding.py``
  differentially verifies it;
* ``merge`` must treat cell values as immutable: the Runner dedups
  identical cells across the jobs of one batch, so a value may be shared
  by several sweep points' merges.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Mapping, TypeVar

from .encode import EncodeError, canonical_json

__all__ = [
    "Cell",
    "derive_cell_seed",
    "validate_plan",
    "calibrate_costs",
    "quarantine_row",
]

_K = TypeVar("_K")


@dataclass(frozen=True)
class Cell:
    """One independently runnable, independently cacheable shard of a run.

    ``key`` names the cell within its scenario (e.g. ``"clos@0.25"``) and
    is part of the cell's cache address; ``params`` are the kwargs for the
    scenario's cell entry point; ``cost`` is a relative wall-clock estimate
    used to schedule long cells first (any positive scale, comparable
    within one selection).
    """

    key: str
    params: dict[str, Any] = field(default_factory=dict)
    cost: float = 1.0


def derive_cell_seed(base_seed: int, scenario: str, cell_key: str) -> int:
    """Stable 32-bit seed for one cell of a sharded scenario.

    Hash-derived from ``(base seed, scenario, cell key)`` so a cell's seed
    does not depend on which other cells exist, on grid order, or on how
    the run is executed (sharded, pooled, or in-process) — the unsharded
    ``run()`` path derives the very same seeds.
    """
    digest = hashlib.sha256(
        f"{base_seed}:{scenario}:{cell_key}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:4], "big")


def calibrate_costs(
    static: Mapping[_K, float], recorded: Mapping[_K, float]
) -> dict[_K, float]:
    """Blend recorded wall-clock durations into static cost estimates.

    ``static`` maps unit keys to estimates on the sharding cost scale
    (arbitrary, comparable units); ``recorded`` maps a subset of those
    keys to measured wall seconds (e.g. from the cell cache's per-cell
    ``duration_s`` telemetry). Keys with positive history get their
    recorded duration converted into static units through one aggregate
    seconds-per-unit ratio fitted over the overlap — so history-backed
    costs order by *measured* time while staying comparable with
    static-only siblings. Keys without history keep their static
    estimate, and with no usable overlap the statics are returned
    unchanged (the fallback the adaptive model promises).

    History is telemetry, not trusted input: a NaN/inf duration (a
    corrupted cache row, a clock that jumped) or a non-finite static
    estimate is treated as *no history* for that key, so the calibrated
    costs — which feed progress ETAs — are always finite.
    """

    def usable(k: _K) -> bool:
        r = recorded.get(k, 0.0)
        return r > 0.0 and math.isfinite(r) and math.isfinite(static[k])

    overlap = [(static[k], recorded[k]) for k in static if usable(k)]
    total_static = sum(s for s, _ in overlap)
    total_recorded = sum(r for _, r in overlap)
    if total_static <= 0.0 or total_recorded <= 0.0:
        return dict(static)
    seconds_per_unit = total_recorded / total_static
    if not math.isfinite(seconds_per_unit) or seconds_per_unit <= 0.0:
        return dict(static)
    return {
        k: (recorded[k] / seconds_per_unit if usable(k) else s)
        for k, s in static.items()
    }


def quarantine_row(label: str, error: str) -> str:
    """One human-readable result row for a quarantined unit.

    ``error`` is a multi-line worker traceback; the row carries the unit
    label plus the traceback's last non-empty line (the exception
    message — the part an operator scans a sweep summary for). The full
    traceback stays available in ``ScenarioResult.quarantined``.
    """
    tail = ""
    for line in error.splitlines():
        if line.strip():
            tail = line.strip()
    return f"[quarantined] {label}: {tail}" if tail else f"[quarantined] {label}"


def validate_plan(scenario: str, plan: list[Cell]) -> list[Cell]:
    """Check a shards() hook's output; returns ``plan`` for chaining."""
    if not plan:
        raise ValueError(f"scenario {scenario!r}: shards() returned no cells")
    seen: set[str] = set()
    for cell in plan:
        if not isinstance(cell, Cell):
            raise TypeError(
                f"scenario {scenario!r}: shards() must return Cells, "
                f"got {type(cell).__name__}"
            )
        if cell.key in seen:
            raise ValueError(
                f"scenario {scenario!r}: duplicate cell key {cell.key!r}"
            )
        seen.add(cell.key)
        if cell.cost <= 0:
            raise ValueError(
                f"scenario {scenario!r}: cell {cell.key!r} has non-positive "
                f"cost {cell.cost!r}"
            )
        try:
            canonical_json(cell.params)
        except (EncodeError, ValueError) as exc:
            raise ValueError(
                f"scenario {scenario!r}: cell {cell.key!r} params are not "
                f"JSON-able: {exc}"
            ) from None
    return plan
