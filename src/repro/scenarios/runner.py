"""Parallel scenario executor with per-scenario seeds and result caching.

The :class:`Runner` is the single execution path shared by the CLI, the
pytest-benchmark harness, and the test suite: resolve a selection of
registered scenarios, bind parameter overrides, derive deterministic
per-scenario seeds, consult the content-addressed cache, and fan the
remaining work out over a ``multiprocessing`` pool. Workers rebuild the
registry by importing :mod:`repro.experiments` — only the picklable job
descriptor crosses the process boundary, never a function object.

Sharded execution
-----------------
A scenario that declares shard hooks (see :mod:`.sharding`) is decomposed
into independent *cells* that fan out across the pool alongside ordinary
jobs. Every unit of work — a whole scenario or one cell — carries a cost
estimate, and the pool schedules expensive units first so the tail stays
short. Cells are cached under their own content-addressed keys the moment
they finish (``imap_unordered`` streams them back), so a killed
paper-scale sweep resumes from its completed cells instead of restarting;
the merged scenario document is cached under the ordinary key once every
cell is in. Cell values travel as the portable encoding
(:func:`~repro.scenarios.encode.to_portable`), which reconstructs the
exact python value, so a merge over pooled or cache-restored cells is
bit-identical to the unsharded in-process run.

Executors
---------
The ``executor`` seam picks how units run once decomposition and cache
checks are done: ``"local"`` executes in-process, ``"pool"`` fans out
over a ``multiprocessing`` pool, and ``"distributed"`` stands up a
:class:`repro.distrib.Coordinator` and leases units to TCP workers —
auto-spawned local subprocesses by default (``workers=N``), or external
``repro worker HOST:PORT`` processes when a ``listen`` address is given.
All three feed the same stream-consumption loop (cache writes, shard
merges, progress), so results are bit-identical across executors by
construction; only transport differs.

Cost ordering is adaptive: cell units start from their static estimates
(scale x network x load for FCT grids), and when the cell cache holds
recorded durations for a scenario's cell keys, those durations are
calibrated into the static scale (:func:`~repro.scenarios.sharding.
calibrate_costs`) and take over the ordering.
"""

from __future__ import annotations

import hashlib
import itertools
import logging
import math
import multiprocessing
import os
import subprocess
import time
import traceback
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from ..distrib.chaos import ChaosCrash, injector as chaos_injector
from ..distrib.journal import RunJournal, journal_path, load_journal
from ..obs.metrics import REGISTRY as _METRICS, armed as _telemetry_armed
from ..obs.trace import Tracer, TraceWriter, trace_path
from . import registry
from .cache import ResultCache
from .encode import (
    EncodeError,
    canonical_json,
    content_hash,
    from_portable,
    to_jsonable,
    to_portable,
)
from .registry import Scenario, ScenarioError
from .sharding import Cell, calibrate_costs, quarantine_row

__all__ = [
    "Runner",
    "ScenarioResult",
    "ScenarioExecutionError",
    "derive_seed",
    "Progress",
]

logger = logging.getLogger(__name__)


class ScenarioExecutionError(RuntimeError):
    """A scenario raised; carries the worker-side traceback text."""

    def __init__(self, name: str, params: Mapping[str, Any], tb: str) -> None:
        super().__init__(f"scenario {name!r} failed with params {dict(params)!r}:\n{tb}")
        self.scenario = name
        self.params = dict(params)
        self.worker_traceback = tb


def _apply_scale_env(
    sc: Scenario, params: dict[str, Any], overrides: Mapping[str, Any]
) -> None:
    """Fold the ``REPRO_SCALE`` profile into a scenario's bound params.

    Any scenario accepting a ``scale`` parameter follows the environment
    profile (``ci`` | ``default`` | ``paper``) unless the caller overrode
    ``scale`` explicitly. The substitution happens at bind time so cached
    results are keyed by the *effective* profile, never by ambient
    environment state.
    """
    env = os.environ.get("REPRO_SCALE")
    if env and sc.accepts("scale") and "scale" not in overrides:
        params["scale"] = env


def derive_seed(base_seed: int, name: str) -> int:
    """Stable 32-bit seed for one scenario of a seeded batch run.

    Hash-derived (not ``base_seed + i``) so the seed a scenario gets does
    not depend on which other scenarios were selected alongside it.
    """
    digest = hashlib.sha256(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass
class ScenarioResult:
    """Outcome of one scenario execution (live or cache hit)."""

    name: str
    params: dict[str, Any]
    rows: list[str]
    payload: Any = None
    value: Any = None
    cached: bool = False
    duration_s: float = 0.0
    #: ``(cells computed, cells restored from cache, cells total)`` for a
    #: sharded execution; ``None`` for ordinary scenarios and full-doc hits.
    cells: tuple[int, int, int] | None = None
    #: Units given up on under ``policy="degraded"``: ``[{"label": ...,
    #: "error": <full traceback>}]``. ``None`` for a clean result.
    quarantined: list[dict[str, str]] | None = None


@dataclass(frozen=True)
class Progress:
    """One completed unit of work, reported to the Runner's callback."""

    done: int
    total: int
    label: str
    duration_s: float
    eta_s: float | None
    failed: bool = False
    #: Name of the (remote or auto-spawned) worker that completed the
    #: unit; ``None`` for in-process and pool execution.
    worker: str | None = None


@dataclass
class _Job:
    scenario: Scenario
    params: dict[str, Any]


#: Relative cost of a whole non-sharded scenario by its registry hint,
#: on the same (arbitrary, comparable) scale shard cells use: a ``heavy``
#: packet scenario is worth a few hundred default-scale cells' load units.
_HINT_COST = {"cheap": 1.0, "medium": 25.0, "heavy": 400.0}

#: Sentinel: the unit's raw python value did not travel (pooled execution).
_NO_VALUE = object()

#: One-time-warning ledger for executor degradation, mirroring the
#: ``REPRO_KERNEL=c`` fallback pattern: each (from, to) edge warns once per
#: process, because a degraded sweep must be *loud* exactly once, not per
#: sweep point. Tests reset this to re-observe the warning.
_DEGRADE_WARNED: set[tuple[str, str]] = set()


def _warn_degrade(from_mode: str, to_mode: str, reason: str) -> None:
    if (from_mode, to_mode) in _DEGRADE_WARNED:
        return
    _DEGRADE_WARNED.add((from_mode, to_mode))
    warnings.warn(
        f"executor {from_mode!r} unavailable ({reason}); degrading to "
        f"{to_mode!r} execution — results are bit-identical across "
        f"executors, only parallelism is lost",
        RuntimeWarning,
        stacklevel=3,
    )


@dataclass
class _Unit:
    """One schedulable piece of work: a whole scenario or a single cell."""

    uid: int
    job_index: int
    kind: str  # "scenario" | "cell"
    name: str
    params: dict[str, Any]
    cell_key: str | None = None
    cost: float = 1.0
    #: Further job indexes whose plans contain this exact cell (same
    #: scenario, key and params) — the cell runs once and its value fans
    #: out to every owner.
    extra_jobs: list[int] = field(default_factory=list)

    @property
    def job_indexes(self) -> list[int]:
        return [self.job_index, *self.extra_jobs]

    @property
    def label(self) -> str:
        return self.name if self.cell_key is None else f"{self.name}:{self.cell_key}"


@dataclass
class _ShardState:
    """Per-job bookkeeping while a sharded scenario's cells are in flight."""

    plan: list[Cell]
    values: dict[str, Any] = field(default_factory=dict)
    durations: dict[str, float] = field(default_factory=dict)
    restored: int = 0
    error: str | None = None
    #: cell key -> full error text, for cells given up on under
    #: ``policy="degraded"`` (merge is skipped; the result reports them).
    quarantined: dict[str, str] = field(default_factory=dict)


def _attach_telemetry(doc: dict[str, Any]) -> None:
    """Side-channel the unit's metric snapshot onto its result document.

    The ``"telemetry"`` key rides the same transport as the doc (pickle
    over the pool pipe, JSON frames over TCP) but is popped by the
    Runner's stream loop *before* any cache write — cached documents are
    byte-identical with telemetry armed or off, which is what makes the
    bitwise-invisibility pins in ``tests/test_obs.py`` trivial to hold.
    """
    if _telemetry_armed() and _METRICS:
        doc["telemetry"] = _METRICS.portable()


def _execute(name: str, params: dict[str, Any]) -> tuple[dict[str, Any], Any]:
    """Run one scenario; return (cacheable doc, raw python value)."""
    registry.load_builtin()
    sc = registry.get(name)
    if _telemetry_armed():
        _METRICS.reset()  # per-unit snapshots, whichever process runs us
    start = time.perf_counter()
    try:
        value = sc.execute(**params)
        duration = time.perf_counter() - start
        # Formatters are scenario code too: a formatter crash must surface
        # as a ScenarioExecutionError with context, not escape the pool raw.
        rows = sc.format(value)
        try:
            payload = to_jsonable(value)
        except EncodeError:
            payload = None
    except Exception:
        # KeyboardInterrupt/SystemExit are BaseException and propagate;
        # scenario failures become error docs, but never silently — the
        # log line carries the unit label even when no caller inspects
        # the doc (e.g. a worker whose lease is later abandoned).
        logger.warning("scenario %r failed (params=%r)", name, params, exc_info=True)
        doc = {"scenario": name, "params": params, "error": traceback.format_exc()}
        return doc, None
    doc = {
        "scenario": name,
        "params": params,
        "rows": rows,
        "payload": payload,
        "duration_s": duration,
    }
    _attach_telemetry(doc)
    return doc, value


def _execute_cell(
    name: str, cell_key: str, params: dict[str, Any]
) -> tuple[dict[str, Any], Any]:
    """Run one cell; return (cacheable doc, raw python value).

    The portable encoding *is* the cell's transport and cache format, so a
    cell value outside the portable vocabulary is an execution error (there
    is no rows-only fallback at cell granularity).
    """
    registry.load_builtin()
    sc = registry.get(name)
    if _telemetry_armed():
        _METRICS.reset()
    start = time.perf_counter()
    try:
        value = sc.run_cell(**params)
        portable = to_portable(value)
    except Exception:
        logger.warning(
            "scenario %r cell %r failed (params=%r)",
            name,
            cell_key,
            params,
            exc_info=True,
        )
        doc = {
            "scenario": name,
            "cell": cell_key,
            "params": params,
            "error": traceback.format_exc(),
        }
        return doc, None
    doc = {
        "scenario": name,
        "cell": cell_key,
        "params": params,
        "value": portable,
        "duration_s": time.perf_counter() - start,
    }
    _attach_telemetry(doc)
    return doc, value


def _execute_unit(
    payload: tuple[int, str, str, str | None, dict[str, Any]]
) -> tuple[int, dict[str, Any]]:
    """Pool worker entry: only the picklable doc crosses the boundary."""
    uid, kind, name, cell_key, params = payload
    if kind == "cell":
        assert cell_key is not None
        doc, _value = _execute_cell(name, cell_key, params)
    else:
        doc, _value = _execute(name, params)
    return uid, doc


class Runner:
    """Execute selections of registered scenarios, cached and in parallel.

    Parameters
    ----------
    workers:
        Worker-pool size; ``None`` and values ``<= 1`` run in-process
        (keeping rich python return values available to callers).
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching entirely.
    use_cache:
        When off, the cache (if any) is still *written* but never read —
        matching the CLI's ``--no-cache`` refresh semantics.
    base_seed:
        When set, every selected scenario that accepts a ``seed`` parameter
        and wasn't explicitly overridden gets :func:`derive_seed`'s stable
        per-scenario value instead of its schema default.
    progress:
        Optional callback invoked (in the parent process) with a
        :class:`Progress` record each time a unit of work — a scenario or
        one shard cell — finishes, with a cost-weighted ETA. Units
        completed by remote workers flow through the same callback (the
        record's ``worker`` field names who ran it), so ``[done/total]``
        accounting covers the whole distributed plan.
    executor:
        ``"local"`` | ``"pool"`` | ``"distributed"`` | ``"service"``, or
        ``None`` to pick automatically (``pool`` when ``workers > 1``,
        else ``local``). ``distributed`` stands up a TCP coordinator and
        leases units to workers: ``workers=N`` auto-spawns N local
        subprocess workers (the default backend), and ``listen``
        additionally accepts external ``repro worker`` processes.
        ``service`` submits the sweep to a long-lived ``repro serve``
        coordinator named by ``service`` instead of standing up its own
        — the job shares that coordinator's worker fleet with whatever
        else is running there, and results stream back through the same
        cache/merge path, bitwise identical to every other executor.
    service:
        ``"host:port"`` of the ``repro serve`` coordinator (required for
        — and only meaningful with — ``executor="service"``).
    secret:
        Shared secret (bytes) for the service coordinator's
        authenticated handshake; ``None`` for open coordinators.
    listen:
        ``"host:port"`` (or tuple) for the distributed coordinator to
        accept workers on; port 0 binds an ephemeral port. ``None`` keeps
        the coordinator on loopback with an ephemeral port, which only
        auto-spawned workers can find — so ``workers`` must be > 0 then.
    lease_timeout:
        Seconds of silence (no heartbeat, no result) before a distributed
        worker's lease is re-queued for another worker.
    max_respawns:
        Budget for replacing auto-spawned local workers that die while
        leased units remain.
    on_listen:
        Callback invoked with the coordinator's resolved ``(host, port)``
        once it is accepting workers (the CLI prints it so a second
        terminal can join).
    policy:
        Completion policy for failed units. ``"strict"`` (default)
        preserves the historical contract: every success is cached as it
        streams back, then the first failure raises
        :class:`ScenarioExecutionError` after the batch drains.
        ``"degraded"`` never raises for unit failures: a failed or
        poison unit is *quarantined* — its label and traceback land in
        the ``ScenarioResult.quarantined`` field (and the result rows)
        while every healthy sibling completes normally — so one bad cell
        cannot wedge a fleet-scale sweep.
    max_cell_attempts:
        How many distinct worker losses one distributed unit survives
        before the coordinator quarantines it as poison (maps onto
        :class:`repro.distrib.Coordinator`'s ``max_releases``).
    resume_journal:
        Resume a crashed distributed run from its write-ahead journal:
        prior quarantine verdicts are honored without re-execution, a
        recorded injected coordinator crash is disarmed (so a
        ``crash_coordinator`` chaos scenario converges on the second
        run), and completed cells restore from the cell cache as always.
    """

    def __init__(
        self,
        workers: int | None = None,
        cache: ResultCache | None = None,
        use_cache: bool = True,
        base_seed: int | None = None,
        progress: Callable[[Progress], None] | None = None,
        executor: str | None = None,
        listen: str | tuple[str, int] | None = None,
        lease_timeout: float = 60.0,
        max_respawns: int = 8,
        on_listen: Callable[[tuple[str, int]], None] | None = None,
        policy: str = "strict",
        max_cell_attempts: int = 3,
        resume_journal: bool = False,
        service: str | tuple[str, int] | None = None,
        secret: bytes | None = None,
    ) -> None:
        if executor not in (None, "local", "pool", "distributed", "service"):
            raise ValueError(
                f"executor must be local|pool|distributed|service, got {executor!r}"
            )
        if policy not in ("strict", "degraded"):
            raise ValueError(f"policy must be strict|degraded, got {policy!r}")
        if executor == "distributed" and not (workers or 0) and listen is None:
            raise ValueError(
                "distributed executor with no auto-spawned workers "
                "(workers=0) needs a listen address external workers can "
                "reach"
            )
        if executor == "service" and service is None:
            raise ValueError(
                "service executor needs the coordinator's address "
                "(service='host:port' / repro sweep --service HOST:PORT)"
            )
        if service is not None:
            from ..distrib.protocol import parse_address

            service = parse_address(service)
        if listen is not None:
            # Normalize (and reject garbage) at construction, where the
            # CLI can turn the ValueError into a clean exit — not minutes
            # into a run.
            from ..distrib.protocol import parse_address

            listen = parse_address(listen)
        self.workers = workers
        self.cache = cache
        self.use_cache = use_cache
        self.base_seed = base_seed
        self.progress = progress
        self.executor = executor
        self.listen = listen
        self.lease_timeout = lease_timeout
        self.max_respawns = max_respawns
        self.on_listen = on_listen
        self.policy = policy
        self.max_cell_attempts = max_cell_attempts
        self.resume_journal = resume_journal
        self.service = service
        self.secret = secret

    # ------------------------------------------------------------ resolution

    def resolve(
        self,
        names: Iterable[str] = (),
        tags: Iterable[str] = (),
        overrides: Mapping[str, Any] | None = None,
    ) -> list[_Job]:
        """Selection -> fully-bound jobs (overrides coerced per scenario).

        A single override set applies across the whole selection: each key
        must be accepted by at least one selected scenario (else it is a
        typo and raises), and binds loosely everywhere else.
        """
        scenarios = registry.select(names, tags)
        overrides = dict(overrides or {})
        for key in overrides:
            if not any(sc.accepts(key) for sc in scenarios):
                accepted = sorted({p for sc in scenarios for p in sc.params})
                raise ScenarioError(
                    f"no selected scenario accepts parameter {key!r} "
                    f"(accepted: {', '.join(accepted) or 'none'})"
                )
        strict = len(scenarios) == 1
        return [
            _Job(sc, self._bind_with_seed(sc, overrides, strict=strict))
            for sc in scenarios
        ]

    def _bind_with_seed(
        self, sc: Scenario, overrides: Mapping[str, Any], *, strict: bool = True
    ) -> dict[str, Any]:
        """Bind overrides, then apply the seed and scale-profile policies."""
        params = sc.bind(overrides, strict=strict)
        if (
            self.base_seed is not None
            and sc.accepts("seed")
            and "seed" not in overrides
        ):
            params["seed"] = derive_seed(self.base_seed, sc.name)
        _apply_scale_env(sc, params, overrides)
        return params

    # ------------------------------------------------------------- execution

    def execute(self, name: str, **overrides: Any) -> Any:
        """Run one scenario in-process and return its raw python value.

        This is the benchmark entry point: same registry, same parameter
        binding and validation as the CLI, no cache, no pool — so a
        pytest-benchmark measurement times exactly the scenario body.
        """
        sc = registry.get(name)
        params = sc.bind(overrides)
        _apply_scale_env(sc, params, overrides)
        return sc.execute(**params)

    def run(
        self,
        names: Iterable[str] = (),
        tags: Iterable[str] = (),
        overrides: Mapping[str, Any] | None = None,
    ) -> list[ScenarioResult]:
        """Resolve a selection and execute it; results in selection order."""
        return self._run_jobs(self.resolve(names, tags, overrides))

    def sweep(
        self,
        name: str,
        grid: Mapping[str, Sequence[Any]],
        overrides: Mapping[str, Any] | None = None,
    ) -> list[ScenarioResult]:
        """Run ``name`` once per point of the cartesian parameter grid."""
        sc = registry.get(name)
        fixed = dict(overrides or {})
        keys = list(grid)
        jobs = []
        for combo in itertools.product(*(grid[k] for k in keys)):
            point = dict(fixed)
            point.update(zip(keys, combo))
            jobs.append(_Job(sc, self._bind_with_seed(sc, point)))
        return self._run_jobs(jobs)

    # -------------------------------------------------------------- internal

    def _read_cache(self) -> bool:
        return self.cache is not None and self.use_cache

    def _decompose(
        self,
        jobs: list[_Job],
        results: dict[int, ScenarioResult],
        tracer: Tracer | None = None,
    ) -> tuple[list[_Unit], dict[int, _ShardState]]:
        """Cache-check every job and expand the misses into work units.

        Ordinary scenarios become one unit each; shardable scenarios expand
        into one unit per cell-cache miss, with cells already in the cache
        restored to the job's shard state immediately.
        """
        units: list[_Unit] = []
        shard_states: dict[int, _ShardState] = {}
        # Sweep points often share cells (same scenario, key, params —
        # e.g. two `networks` grids both containing opera@0.25): run each
        # distinct cell once per batch and fan its value out to every
        # owning job.
        pending_cells: dict[tuple[str, str, str], _Unit] = {}
        for i, job in enumerate(jobs):
            sc = job.scenario
            doc = (
                self.cache.get(sc.name, job.params) if self._read_cache() else None
            )
            if doc is not None and "rows" in doc:
                results[i] = ScenarioResult(
                    name=sc.name,
                    params=job.params,
                    rows=list(doc["rows"]),
                    payload=doc.get("payload"),
                    cached=True,
                    duration_s=float(doc.get("duration_s", 0.0)),
                )
                if tracer:
                    tracer.emit(
                        {"ev": "cache-hit", "label": sc.name, "kind": "doc"}
                    )
                continue
            if not sc.shardable:
                units.append(
                    _Unit(
                        uid=len(units),
                        job_index=i,
                        kind="scenario",
                        name=sc.name,
                        params=job.params,
                        cost=_HINT_COST.get(sc.cost, 1.0),
                    )
                )
                continue
            try:
                state = _ShardState(plan=sc.shard_plan(**job.params))
            except Exception:
                # Decomposition happens before any work runs, so aborting
                # here loses nothing — but it is still scenario code failing
                # and must carry scenario context.
                raise ScenarioExecutionError(
                    sc.name, job.params, traceback.format_exc()
                ) from None
            shard_states[i] = state
            for cell in state.plan:
                cdoc = (
                    self.cache.get_cell(sc.name, cell.key, cell.params)
                    if self._read_cache()
                    else None
                )
                if cdoc is not None and "value" in cdoc:
                    state.values[cell.key] = from_portable(cdoc["value"])
                    state.durations[cell.key] = float(cdoc.get("duration_s", 0.0))
                    state.restored += 1
                    if tracer:
                        tracer.emit(
                            {
                                "ev": "cache-hit",
                                "label": f"{sc.name}:{cell.key}",
                                "kind": "cell",
                            }
                        )
                    continue
                dedup = (sc.name, cell.key, canonical_json(cell.params))
                if dedup in pending_cells:
                    pending_cells[dedup].extra_jobs.append(i)
                    continue
                unit = _Unit(
                    uid=len(units),
                    job_index=i,
                    kind="cell",
                    name=sc.name,
                    params=cell.params,
                    cell_key=cell.key,
                    cost=cell.cost,
                )
                pending_cells[dedup] = unit
                units.append(unit)
        return units, shard_states

    def _serial_stream(
        self, ordered: list[_Unit]
    ) -> Iterator[tuple[_Unit, dict[str, Any], Any, str | None]]:
        for unit in ordered:
            if unit.kind == "cell":
                assert unit.cell_key is not None
                doc, value = _execute_cell(unit.name, unit.cell_key, unit.params)
            else:
                doc, value = _execute(unit.name, unit.params)
            yield unit, doc, value, None

    def _pool_stream(
        self, ordered: list[_Unit], pool: multiprocessing.pool.Pool
    ) -> Iterator[tuple[_Unit, dict[str, Any], Any, str | None]]:
        """Stream unit docs back as workers finish them.

        ``imap_unordered(chunksize=1)`` lets short units return while long
        cells are still running, so successes are cached (and failures
        surfaced through the progress callback) without waiting for the
        whole batch. The pool is created *eagerly* by :meth:`_make_stream`
        (a spawn failure there degrades to local execution); this
        generator owns and closes it.
        """
        by_uid = {unit.uid: unit for unit in ordered}
        payloads = [
            (u.uid, u.kind, u.name, u.cell_key, u.params) for u in ordered
        ]
        with pool:
            for uid, doc in pool.imap_unordered(_execute_unit, payloads, chunksize=1):
                yield by_uid[uid], doc, _NO_VALUE, None

    def _unit_jkey(self, unit: _Unit) -> str | None:
        """The unit's cache key — its durable identity in the run journal."""
        if self.cache is None:
            return None
        if unit.kind == "cell":
            assert unit.cell_key is not None
            return self.cache.cell_key(unit.name, unit.cell_key, unit.params)
        return self.cache.key(unit.name, unit.params)

    def _setup_distributed(
        self,
        ordered: list[_Unit],
        journal: RunJournal | None,
        crash_after: int | None,
        tracer: Tracer | None = None,
        status_extra: dict[str, Any] | None = None,
    ) -> Iterator[tuple[_Unit, dict[str, Any], Any, str | None]]:
        """Eagerly stand up the coordinator + initial worker fleet.

        Setup failures — the listen socket cannot bind, the worker
        subprocess cannot spawn — raise ``OSError`` *here*, before any
        unit runs, so :meth:`_make_stream` can degrade to pool/local
        execution. Mid-run failures inside the returned generator do not
        degrade: the recovery machinery (re-lease, respawn, backoff)
        owns those.
        """
        from ..distrib import Coordinator, spawn_local_worker

        on_event = None
        if tracer:
            by_uid = {u.uid: u for u in ordered}

            def on_event(kind: str, uid: int, worker: str) -> None:
                unit = by_uid.get(uid)
                tracer.emit(
                    {
                        "ev": kind,
                        "uid": uid,
                        "label": unit.label if unit is not None else None,
                        "worker": worker,
                    }
                )

        host, port = self.listen if self.listen is not None else ("127.0.0.1", 0)
        coord = Coordinator(
            host,
            port,
            lease_timeout=self.lease_timeout,
            max_releases=self.max_cell_attempts,
            journal=journal,
            crash_after=crash_after,
            on_event=on_event,
            status_extra=status_extra,
        )
        procs: list[Any] = []
        #: Monotonic worker-role counter (``REPRO_CHAOS_ROLE=worker-N``):
        #: every spawn — initial or respawn — gets a fresh seeded chaos
        #: stream, so replacement workers do not replay their
        #: predecessor's fault sequence.
        roles = itertools.count()
        try:
            if self.on_listen is not None:
                self.on_listen(coord.address)
            for _ in range(min(self.workers or 0, len(ordered))):
                procs.append(
                    spawn_local_worker(coord.address, role=f"worker-{next(roles)}")
                )
        except OSError:
            coord.close()
            for p in procs:
                if p.poll() is None:
                    p.terminate()
            raise
        return self._distributed_stream(ordered, coord, procs, roles)

    def _distributed_stream(
        self,
        ordered: list[_Unit],
        coord: Any,
        procs: list[Any],
        roles: Iterator[int],
    ) -> Iterator[tuple[_Unit, dict[str, Any], Any, str | None]]:
        """Lease units to TCP workers via a coordinator; stream docs back.

        With ``workers=N`` the Runner spawns N local subprocess workers
        against its own coordinator (and replaces ones that die while work
        remains, up to ``max_respawns``); a ``listen`` address additionally
        lets external ``repro worker`` processes join the same run. The
        documents streaming back are produced by the very same executor
        functions the pool path uses, so everything downstream is shared.
        Lease payloads carry each unit's cache key (``jkey``) so the
        coordinator's write-ahead journal records grants/completions
        under the same identity the cell cache uses.
        """
        from ..distrib import spawn_local_worker

        by_uid = {unit.uid: unit for unit in ordered}
        payloads = [
            {
                "uid": u.uid,
                "kind": u.kind,
                "name": u.name,
                "cell_key": u.cell_key,
                "params": to_portable(u.params),
                "jkey": self._unit_jkey(u),
            }
            for u in ordered
        ]
        n_spawn = len(procs)
        budget = self.max_respawns

        def watchdog(c: Any) -> None:
            nonlocal budget
            if not n_spawn:
                return
            live = [p for p in procs if p.poll() is None]
            lost = len(procs) - len(live)
            procs[:] = live
            if lost and c.unfinished:
                for _ in range(min(lost, max(budget, 0))):
                    procs.append(
                        spawn_local_worker(
                            c.address, role=f"worker-{next(roles)}"
                        )
                    )
                    budget -= 1
            # With no listen address there is no other way for workers to
            # appear: an empty fleet plus an exhausted budget means the
            # run can never finish, and hanging silently is the one
            # unacceptable outcome. (The coordinator's per-unit release
            # bound usually fails a poison unit long before this trips.)
            if (
                not procs
                and budget <= 0
                and c.unfinished
                and self.listen is None
            ):
                raise RuntimeError(
                    "distributed run stalled: every auto-spawned worker "
                    f"died and the respawn budget ({self.max_respawns}) is "
                    "exhausted"
                )

        try:
            for uid, doc, worker in coord.run(payloads, watchdog=watchdog):
                yield by_uid[uid], doc, _NO_VALUE, worker
        finally:
            coord.close()
            for p in procs:
                if p.poll() is None:
                    p.terminate()
            for p in procs:
                # Only the two failures reaping can legitimately hit:
                # a worker that ignores SIGTERM (escalate to SIGKILL) or
                # an OS-level error on an already-gone process. Anything
                # else — including KeyboardInterrupt — propagates.
                try:
                    p.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    logger.warning(
                        "worker pid %s ignored terminate; killing", p.pid
                    )
                    p.kill()
                    p.wait(timeout=5)
                except OSError:
                    pass

    def _service_stream(
        self, ordered: list[_Unit], run_key: str | None = None
    ) -> Iterator[tuple[_Unit, dict[str, Any], Any, str | None]]:
        """Submit the batch to a long-lived ``repro serve`` coordinator.

        The payloads are byte-for-byte the ones the ``distributed``
        executor would lease (portable params, cache jkeys), and the
        coordinator's workers run them through the same executor
        functions, so the documents streaming back — and therefore the
        merged rows — are bitwise identical to an in-process run.

        Deliberately *no* graceful degradation here: the user named a
        specific coordinator, so an unreachable or refusing service is
        an answer for them, not something to paper over with a silent
        local run (which could take hours they budgeted a fleet for).
        """
        from ..distrib.jobs import ServiceClient

        assert self.service is not None
        by_uid = {unit.uid: unit for unit in ordered}
        payloads = [
            {
                "uid": u.uid,
                "kind": u.kind,
                "name": u.name,
                "cell_key": u.cell_key,
                "params": to_portable(u.params),
                "jkey": self._unit_jkey(u),
            }
            for u in ordered
        ]
        label = ",".join(sorted({u.name for u in ordered}))
        client = ServiceClient(self.service, secret=self.secret)
        client.submit(payloads, label=label, run_key=run_key)
        for uid, doc, worker in client.stream_results():
            yield by_uid[uid], doc, _NO_VALUE, worker

    def _make_stream(
        self,
        ordered: list[_Unit],
        mode: str,
        n_workers: int,
        journal: RunJournal | None,
        crash_after: int | None,
        tracer: Tracer | None = None,
        status_extra: dict[str, Any] | None = None,
        run_key: str | None = None,
    ) -> Iterator[tuple[_Unit, dict[str, Any], Any, str | None]]:
        """Stand up the requested executor, degrading gracefully.

        ``distributed → pool → local``: when the coordinator's listen
        socket cannot bind or the initial worker spawn fails, the run
        proceeds on the next-simpler executor with a one-time
        :class:`RuntimeWarning` (mirroring the ``REPRO_KERNEL=c``
        fallback) — results are bit-identical across executors, so
        degradation costs parallelism, never correctness. The
        ``service`` executor never degrades (see
        :meth:`_service_stream`).
        """
        if mode == "service" and ordered:
            return self._service_stream(ordered, run_key)
        if mode == "distributed" and ordered:
            can_pool = n_workers > 1 and len(ordered) > 1
            try:
                return self._setup_distributed(
                    ordered, journal, crash_after, tracer, status_extra
                )
            except OSError as exc:
                _warn_degrade(
                    "distributed", "pool" if can_pool else "local", str(exc)
                )
                mode = "pool"
        if mode == "pool" and n_workers > 1 and len(ordered) > 1:
            try:
                pool = multiprocessing.Pool(min(n_workers, len(ordered)))
            except OSError as exc:
                _warn_degrade("pool", "local", str(exc))
            else:
                return self._pool_stream(ordered, pool)
        return self._serial_stream(ordered)

    def _adapt_costs(self, units: list[_Unit]) -> None:
        """Upgrade static cell-cost estimates with recorded durations.

        Per scenario, recorded per-cell wall clocks from the cell cache
        (:meth:`ResultCache.cell_duration_records`) are calibrated into
        the static estimate scale and replace the estimates of cells with
        history; cells without history keep their static cost, comparable
        through the shared calibration. Only *comparable* history counts:
        a record feeds a unit when its params match the unit's in
        everything but ``seed`` (same cell key, same scale, same horizon —
        different randomness), so ci-scale telemetry can never misorder a
        paper-scale sweep. Duration telemetry is read even under
        ``use_cache=False`` — ordering hints are not cached *results*.
        """
        if self.cache is None:
            return
        cells_by_name: dict[str, list[_Unit]] = {}
        for unit in units:
            if unit.kind == "cell":
                cells_by_name.setdefault(unit.name, []).append(unit)

        def _shape(params: Mapping[str, Any]) -> str:
            # canonical_json normalizes tuples (unit params) vs lists
            # (JSON-restored doc params) into one comparable form.
            return canonical_json(
                {k: v for k, v in params.items() if k != "seed"}
            )

        for name, cell_units in cells_by_name.items():
            records = self.cache.cell_duration_records(name)
            if not records:
                continue
            totals: dict[tuple[str, str], tuple[float, int]] = {}
            for key, params, duration in records:
                probe = (key, _shape(params))
                prev = totals.get(probe, (0.0, 0))
                totals[probe] = (prev[0] + duration, prev[1] + 1)
            static = {u.uid: u.cost for u in cell_units}
            history = {}
            for u in cell_units:
                assert u.cell_key is not None
                hit = totals.get((u.cell_key, _shape(u.params)))
                if hit is not None:
                    history[u.uid] = hit[0] / hit[1]
            blended = calibrate_costs(static, history)
            for u in cell_units:
                u.cost = blended[u.uid]

    def _run_key(self, jobs: list[_Job]) -> str:
        """Stable identity of one batch, for the run-journal filename.

        Hashes the ordered ``(scenario, canonical params)`` list — the
        same command resumes the same journal; a different sweep can
        never read another sweep's state.
        """
        return content_hash(
            {
                "version": 1,
                "journal": [
                    [job.scenario.name, canonical_json(job.params)]
                    for job in jobs
                ],
            }
        )

    def _progress_sink(self, event: dict[str, Any]) -> None:
        """Adapt ``completed`` span events into the ``progress`` callback.

        The callback is a *consumer of the span stream*: the stderr
        progress line and the trace file read the same event, so they can
        never disagree about done counts, ETAs or who ran what.
        """
        if event.get("ev") != "completed" or self.progress is None:
            return
        self.progress(
            Progress(
                done=event["done"],
                total=event["total"],
                label=event["label"],
                duration_s=event["duration_s"],
                eta_s=event["eta_s"],
                failed=event["failed"],
                worker=event.get("worker"),
            )
        )

    def _run_jobs(self, jobs: list[_Job]) -> list[ScenarioResult]:
        run_key = self._run_key(jobs)
        # One span stream, two optional sinks: the JSONL trace file (when
        # telemetry is armed and a cache root exists to hold it) and the
        # progress callback. With neither, every emit is one falsy check.
        tracer = Tracer()
        writer: TraceWriter | None = None
        if self.cache is not None and _telemetry_armed():
            writer = TraceWriter(trace_path(self.cache.root, run_key))
            tracer.add_sink(writer.write)
        if self.progress is not None:
            tracer.add_sink(self._progress_sink)
        results: dict[int, ScenarioResult] = {}
        units, shard_states = self._decompose(jobs, results, tracer)
        self._adapt_costs(units)

        # Schedule expensive units first so the pool tail is short. Sweep
        # points and shard cells carry real cost estimates (recorded
        # durations when the cache has them, else e.g. load descending for
        # FCT grids); plain scenarios rank by their hint.
        ordered = sorted(units, key=lambda u: (-u.cost, u.uid))

        n_workers = self.workers or 0
        mode = self.executor or ("pool" if n_workers > 1 else "local")

        # Distributed runs with a cache keep a write-ahead journal next to
        # it: grants/completions for crash forensics, quarantine verdicts
        # and injected-crash records for --resume-journal.
        journal: RunJournal | None = None
        pre_resolved: list[tuple[_Unit, dict[str, Any]]] = []
        inj = chaos_injector()
        crash_after = inj.config.crash_coordinator if inj is not None else None
        if mode == "distributed" and ordered and self.cache is not None:
            jpath = journal_path(self.cache.root, run_key)
            prior = load_journal(jpath) if self.resume_journal else None
            if prior is not None:
                if prior.crashed:
                    # The injected crash already fired on the previous
                    # run; the resume run must finish, not crash again.
                    crash_after = None
                if prior.quarantined:
                    live: list[_Unit] = []
                    for unit in ordered:
                        verdict = prior.quarantined.get(self._unit_jkey(unit))
                        if verdict is None:
                            live.append(unit)
                            continue
                        doc = {
                            "scenario": unit.name,
                            "params": to_portable(unit.params),
                            "error": verdict["error"],
                            "quarantined": True,
                        }
                        if unit.cell_key:
                            doc["cell"] = unit.cell_key
                        pre_resolved.append((unit, doc))
                    ordered = live
            journal = RunJournal(jpath, resume=prior is not None)
            journal.start(run_key, len(ordered))

        total_units = len(pre_resolved) + len(ordered)
        status_extra = None
        if tracer:
            doc_hits = len(results)
            cell_hits = sum(st.restored for st in shard_states.values())
            status_extra = {
                "run": run_key[:12],
                "jobs": len(jobs),
                "cache_hits": {"docs": doc_hits, "cells": cell_hits},
            }
            tracer.emit(
                {
                    "ev": "run-start",
                    "run": run_key,
                    "units": total_units,
                    "jobs": len(jobs),
                    "restored": doc_hits + cell_hits,
                }
            )
            for unit in ordered:
                tracer.emit(
                    {
                        "ev": "queued",
                        "uid": unit.uid,
                        "label": unit.label,
                        "cost": round(unit.cost, 6),
                    }
                )
        stream = itertools.chain(
            ((u, d, _NO_VALUE, None) for u, d in pre_resolved),
            self._make_stream(
                ordered,
                mode,
                n_workers,
                journal,
                crash_after,
                tracer,
                status_extra,
                run_key,
            ),
        )

        # Cache every success the moment it streams back, and only surface
        # the first failure after the batch drains: one bad scenario or cell
        # must not throw away minutes of completed work.
        failure: ScenarioExecutionError | None = None
        total_cost = (
            sum(u.cost for u, _ in pre_resolved) + sum(u.cost for u in ordered)
        ) or 1.0
        done_cost = 0.0
        started = time.perf_counter()
        try:
            for done, (unit, doc, value, worker) in enumerate(stream, start=1):
                # The metric snapshot is a side channel, never part of the
                # result: pop it before anything downstream (cache writes
                # included) can see the doc, so cached bytes are identical
                # with telemetry armed or off.
                telemetry = doc.pop("telemetry", None)
                failed = "error" in doc
                if failed and self.policy == "degraded":
                    err = doc["error"]
                    # Coordinator poison docs and journal-restored verdicts
                    # are already journaled; only fresh execution failures
                    # need a quarantine record here.
                    if journal is not None and not doc.get("quarantined"):
                        journal.quarantine(
                            self._unit_jkey(unit), unit.label, err
                        )
                    if unit.kind == "cell":
                        assert unit.cell_key is not None
                        for j in unit.job_indexes:
                            shard_states[j].quarantined[unit.cell_key] = err
                    else:
                        job = jobs[unit.job_index]
                        results[unit.job_index] = ScenarioResult(
                            name=unit.name,
                            params=job.params,
                            rows=[quarantine_row(unit.label, err)],
                            quarantined=[{"label": unit.label, "error": err}],
                        )
                elif unit.kind == "cell":
                    if failed:
                        for j in unit.job_indexes:
                            shard_states[j].error = doc["error"]
                        if failure is None:
                            failure = ScenarioExecutionError(
                                f"{unit.name}[{unit.cell_key}]",
                                unit.params,
                                doc["error"],
                            )
                    else:
                        if self.cache is not None:
                            assert unit.cell_key is not None
                            self.cache.put_cell(
                                unit.name, unit.cell_key, unit.params, doc
                            )
                        cell_value = (
                            from_portable(doc["value"])
                            if value is _NO_VALUE
                            else value
                        )
                        for j in unit.job_indexes:
                            state = shard_states[j]
                            state.values[unit.cell_key] = cell_value
                            state.durations[unit.cell_key] = float(
                                doc["duration_s"]
                            )
                else:
                    job = jobs[unit.job_index]
                    if failed:
                        if failure is None:
                            failure = ScenarioExecutionError(
                                unit.name, unit.params, doc["error"]
                            )
                    else:
                        if self.cache is not None:
                            self.cache.put(unit.name, unit.params, doc)
                        results[unit.job_index] = ScenarioResult(
                            name=unit.name,
                            params=job.params,
                            rows=list(doc["rows"]),
                            payload=doc.get("payload"),
                            value=None if value is _NO_VALUE else value,
                            cached=False,
                            duration_s=float(doc.get("duration_s", 0.0)),
                        )
                done_cost += unit.cost
                if tracer:
                    elapsed = time.perf_counter() - started
                    # Guard the ETA against degenerate inputs: a zero-cost
                    # unit (possible after adaptive re-costing), a finish
                    # inside one clock tick, or non-finite costs (recorded
                    # ``duration_s`` telemetry disagreeing with the static
                    # estimates) must report "unknown", not a division
                    # blow-up, a NaN, or a negative countdown.
                    eta = None
                    if done_cost > 0 and elapsed > 0:
                        eta = max(
                            elapsed * (total_cost - done_cost) / done_cost, 0.0
                        )
                        if not math.isfinite(eta):
                            eta = None
                    event: dict[str, Any] = {
                        "ev": "completed",
                        "uid": unit.uid,
                        "label": unit.label,
                        "duration_s": float(doc.get("duration_s", 0.0)),
                        "failed": failed,
                        "quarantined": bool(doc.get("quarantined")),
                        "worker": worker,
                        "done": done,
                        "total": total_units,
                        "eta_s": eta,
                    }
                    if telemetry is not None:
                        event["telemetry"] = telemetry
                    tracer.emit(event)
        except ChaosCrash as exc:
            # The injected coordinator death: record it in the journal so
            # the resume run disarms the crash, then let it surface — the
            # operator (or the CI script) restarts with --resume-journal.
            if journal is not None:
                journal.crash(str(exc))
                journal.close()
            tracer.emit(
                {
                    "ev": "run-end",
                    "wall_s": round(time.perf_counter() - started, 6),
                    "crashed": True,
                }
            )
            raise
        else:
            if journal is not None:
                journal.end()
            tracer.emit(
                {
                    "ev": "run-end",
                    "wall_s": round(time.perf_counter() - started, 6),
                    "crashed": False,
                }
            )
        finally:
            if journal is not None:
                journal.close()  # idempotent; covers non-chaos exits too
            if writer is not None:
                writer.close()

        failure = self._merge_shards(jobs, shard_states, results, failure)
        if failure is not None:
            raise failure
        return [results[i] for i in range(len(jobs))]

    def _merge_shards(
        self,
        jobs: list[_Job],
        shard_states: dict[int, _ShardState],
        results: dict[int, ScenarioResult],
        failure: ScenarioExecutionError | None,
    ) -> ScenarioExecutionError | None:
        """Fold completed cell sets into scenario results (and the cache)."""
        for i, state in sorted(shard_states.items()):
            if state.error is not None:
                continue  # cell failure already recorded; siblings are cached
            job = jobs[i]
            sc = job.scenario
            if state.quarantined:
                # Degraded completion: some cells were given up on, so no
                # merged value exists — but the sweep point still reports,
                # with every quarantined unit's label and traceback, and
                # every healthy sibling cell is already in the cache (a
                # later run with the poison fixed resumes from them). The
                # partial document is deliberately NOT cached: a cache hit
                # must always mean a complete result.
                quarantined = [
                    {"label": f"{sc.name}:{key}", "error": state.quarantined[key]}
                    for key in sorted(state.quarantined)
                ]
                rows = [
                    f"[degraded] {sc.name}: {len(quarantined)} of "
                    f"{len(state.plan)} cell(s) quarantined; no merged result"
                ]
                rows += [
                    quarantine_row(rec["label"], rec["error"])
                    for rec in quarantined
                ]
                computed = (
                    len(state.plan) - state.restored - len(state.quarantined)
                )
                results[i] = ScenarioResult(
                    name=sc.name,
                    params=job.params,
                    rows=rows,
                    payload=None,
                    value=None,
                    cached=False,
                    duration_s=sum(state.durations.values()),
                    cells=(computed, state.restored, len(state.plan)),
                    quarantined=quarantined,
                )
                continue
            try:
                values = [state.values[cell.key] for cell in state.plan]
                merged = sc.merge(values, **job.params)
                rows = sc.format(merged)
                try:
                    payload = to_jsonable(merged)
                except EncodeError:
                    payload = None
            except Exception:
                # Merge/format failures after a later job already failed
                # would otherwise vanish (only the first failure is
                # raised) — log every one with its scenario label.
                logger.warning(
                    "scenario %r merge failed (params=%r)",
                    sc.name,
                    job.params,
                    exc_info=True,
                )
                if failure is None:
                    failure = ScenarioExecutionError(
                        sc.name, job.params, traceback.format_exc()
                    )
                continue
            duration = sum(state.durations.values())
            computed = len(state.plan) - state.restored
            doc = {
                "scenario": sc.name,
                "params": job.params,
                "rows": rows,
                "payload": payload,
                "duration_s": duration,
                "cells": {"total": len(state.plan), "computed": computed},
            }
            if self.cache is not None:
                self.cache.put(sc.name, job.params, doc)
            results[i] = ScenarioResult(
                name=sc.name,
                params=job.params,
                rows=rows,
                payload=payload,
                value=merged,
                cached=computed == 0,
                duration_s=duration,
                cells=(computed, state.restored, len(state.plan)),
            )
        return failure
