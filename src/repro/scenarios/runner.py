"""Parallel scenario executor with per-scenario seeds and result caching.

The :class:`Runner` is the single execution path shared by the CLI, the
pytest-benchmark harness, and the test suite: resolve a selection of
registered scenarios, bind parameter overrides, derive deterministic
per-scenario seeds, consult the content-addressed cache, and fan the
remaining work out over a ``multiprocessing`` pool (heavy scenarios
first). Workers rebuild the registry by importing :mod:`repro.experiments`
— only the ``(scenario name, params)`` job descriptor crosses the process
boundary, never a function object.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from . import registry
from .cache import ResultCache
from .encode import EncodeError, to_jsonable
from .registry import Scenario, ScenarioError

__all__ = ["Runner", "ScenarioResult", "ScenarioExecutionError", "derive_seed"]


class ScenarioExecutionError(RuntimeError):
    """A scenario raised; carries the worker-side traceback text."""

    def __init__(self, name: str, params: Mapping[str, Any], tb: str) -> None:
        super().__init__(f"scenario {name!r} failed with params {dict(params)!r}:\n{tb}")
        self.scenario = name
        self.params = dict(params)
        self.worker_traceback = tb


def _apply_scale_env(
    sc: Scenario, params: dict[str, Any], overrides: Mapping[str, Any]
) -> None:
    """Fold the ``REPRO_SCALE`` profile into a scenario's bound params.

    Any scenario accepting a ``scale`` parameter follows the environment
    profile (``ci`` | ``default`` | ``paper``) unless the caller overrode
    ``scale`` explicitly. The substitution happens at bind time so cached
    results are keyed by the *effective* profile, never by ambient
    environment state.
    """
    env = os.environ.get("REPRO_SCALE")
    if env and sc.accepts("scale") and "scale" not in overrides:
        params["scale"] = env


def derive_seed(base_seed: int, name: str) -> int:
    """Stable 32-bit seed for one scenario of a seeded batch run.

    Hash-derived (not ``base_seed + i``) so the seed a scenario gets does
    not depend on which other scenarios were selected alongside it.
    """
    digest = hashlib.sha256(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass
class ScenarioResult:
    """Outcome of one scenario execution (live or cache hit)."""

    name: str
    params: dict[str, Any]
    rows: list[str]
    payload: Any = None
    value: Any = None
    cached: bool = False
    duration_s: float = 0.0


@dataclass
class _Job:
    scenario: Scenario
    params: dict[str, Any]


def _execute(name: str, params: dict[str, Any]) -> tuple[dict[str, Any], Any]:
    """Run one scenario; return (cacheable doc, raw python value)."""
    registry.load_builtin()
    sc = registry.get(name)
    start = time.perf_counter()
    try:
        value = sc.execute(**params)
        duration = time.perf_counter() - start
        # Formatters are scenario code too: a formatter crash must surface
        # as a ScenarioExecutionError with context, not escape pool.map raw.
        rows = sc.format(value)
        try:
            payload = to_jsonable(value)
        except EncodeError:
            payload = None
    except Exception:
        doc = {"scenario": name, "params": params, "error": traceback.format_exc()}
        return doc, None
    doc = {
        "scenario": name,
        "params": params,
        "rows": rows,
        "payload": payload,
        "duration_s": duration,
    }
    return doc, value


def _execute_job(job: tuple[str, dict[str, Any]]) -> dict[str, Any]:
    """Pool worker entry: only the picklable doc crosses the boundary."""
    name, params = job
    doc, _value = _execute(name, params)
    return doc


class Runner:
    """Execute selections of registered scenarios, cached and in parallel.

    Parameters
    ----------
    workers:
        Worker-pool size; ``None`` and values ``<= 1`` run in-process
        (keeping rich python return values available to callers).
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching entirely.
    use_cache:
        When off, the cache (if any) is still *written* but never read —
        matching the CLI's ``--no-cache`` refresh semantics.
    base_seed:
        When set, every selected scenario that accepts a ``seed`` parameter
        and wasn't explicitly overridden gets :func:`derive_seed`'s stable
        per-scenario value instead of its schema default.
    """

    def __init__(
        self,
        workers: int | None = None,
        cache: ResultCache | None = None,
        use_cache: bool = True,
        base_seed: int | None = None,
    ) -> None:
        self.workers = workers
        self.cache = cache
        self.use_cache = use_cache
        self.base_seed = base_seed

    # ------------------------------------------------------------ resolution

    def resolve(
        self,
        names: Iterable[str] = (),
        tags: Iterable[str] = (),
        overrides: Mapping[str, Any] | None = None,
    ) -> list[_Job]:
        """Selection -> fully-bound jobs (overrides coerced per scenario).

        A single override set applies across the whole selection: each key
        must be accepted by at least one selected scenario (else it is a
        typo and raises), and binds loosely everywhere else.
        """
        scenarios = registry.select(names, tags)
        overrides = dict(overrides or {})
        for key in overrides:
            if not any(sc.accepts(key) for sc in scenarios):
                accepted = sorted({p for sc in scenarios for p in sc.params})
                raise ScenarioError(
                    f"no selected scenario accepts parameter {key!r} "
                    f"(accepted: {', '.join(accepted) or 'none'})"
                )
        strict = len(scenarios) == 1
        return [
            _Job(sc, self._bind_with_seed(sc, overrides, strict=strict))
            for sc in scenarios
        ]

    def _bind_with_seed(
        self, sc: Scenario, overrides: Mapping[str, Any], *, strict: bool = True
    ) -> dict[str, Any]:
        """Bind overrides, then apply the seed and scale-profile policies."""
        params = sc.bind(overrides, strict=strict)
        if (
            self.base_seed is not None
            and sc.accepts("seed")
            and "seed" not in overrides
        ):
            params["seed"] = derive_seed(self.base_seed, sc.name)
        _apply_scale_env(sc, params, overrides)
        return params

    # ------------------------------------------------------------- execution

    def execute(self, name: str, **overrides: Any) -> Any:
        """Run one scenario in-process and return its raw python value.

        This is the benchmark entry point: same registry, same parameter
        binding and validation as the CLI, no cache, no pool — so a
        pytest-benchmark measurement times exactly the scenario body.
        """
        sc = registry.get(name)
        params = sc.bind(overrides)
        _apply_scale_env(sc, params, overrides)
        return sc.execute(**params)

    def run(
        self,
        names: Iterable[str] = (),
        tags: Iterable[str] = (),
        overrides: Mapping[str, Any] | None = None,
    ) -> list[ScenarioResult]:
        """Resolve a selection and execute it; results in selection order."""
        return self._run_jobs(self.resolve(names, tags, overrides))

    def sweep(
        self,
        name: str,
        grid: Mapping[str, Sequence[Any]],
        overrides: Mapping[str, Any] | None = None,
    ) -> list[ScenarioResult]:
        """Run ``name`` once per point of the cartesian parameter grid."""
        sc = registry.get(name)
        fixed = dict(overrides or {})
        keys = list(grid)
        jobs = []
        for combo in itertools.product(*(grid[k] for k in keys)):
            point = dict(fixed)
            point.update(zip(keys, combo))
            jobs.append(_Job(sc, self._bind_with_seed(sc, point)))
        return self._run_jobs(jobs)

    # -------------------------------------------------------------- internal

    def _run_jobs(self, jobs: list[_Job]) -> list[ScenarioResult]:
        results: dict[int, ScenarioResult] = {}
        misses: list[tuple[int, _Job]] = []
        for i, job in enumerate(jobs):
            doc = (
                self.cache.get(job.scenario.name, job.params)
                if (self.cache is not None and self.use_cache)
                else None
            )
            if doc is not None and "rows" in doc:
                results[i] = ScenarioResult(
                    name=job.scenario.name,
                    params=job.params,
                    rows=list(doc["rows"]),
                    payload=doc.get("payload"),
                    cached=True,
                    duration_s=float(doc.get("duration_s", 0.0)),
                )
            else:
                misses.append((i, job))

        n_workers = self.workers or 0
        if n_workers > 1 and len(misses) > 1:
            docs = self._run_pool(misses, n_workers)
        else:
            docs = []
            for i, job in misses:
                doc, value = _execute(job.scenario.name, job.params)
                docs.append((i, doc, value))

        # Cache every success before surfacing any failure: one bad scenario
        # in a batch must not throw away minutes of completed work.
        failure: ScenarioExecutionError | None = None
        for i, doc, value in docs:
            job = jobs[i]
            if "error" in doc:
                if failure is None:
                    failure = ScenarioExecutionError(
                        job.scenario.name, job.params, doc["error"]
                    )
                continue
            if self.cache is not None:
                self.cache.put(job.scenario.name, job.params, doc)
            results[i] = ScenarioResult(
                name=job.scenario.name,
                params=job.params,
                rows=list(doc["rows"]),
                payload=doc.get("payload"),
                value=value,
                cached=False,
                duration_s=float(doc.get("duration_s", 0.0)),
            )
        if failure is not None:
            raise failure
        return [results[i] for i in range(len(jobs))]

    def _run_pool(
        self, misses: list[tuple[int, _Job]], n_workers: int
    ) -> list[tuple[int, dict[str, Any], Any]]:
        # Schedule expensive scenarios first so the pool tail is short.
        cost_rank = {c: r for r, c in enumerate(registry.COST_HINTS)}
        ordered = sorted(
            misses, key=lambda m: cost_rank.get(m[1].scenario.cost, 0), reverse=True
        )
        payloads = [(job.scenario.name, job.params) for _i, job in ordered]
        with multiprocessing.Pool(min(n_workers, len(ordered))) as pool:
            docs = pool.map(_execute_job, payloads)
        # In-process executions keep the raw value; pooled ones do not
        # (results cross the process boundary as rows + JSON payload).
        return [(i, doc, None) for (i, _job), doc in zip(ordered, docs)]
