"""Parallel scenario executor with per-scenario seeds and result caching.

The :class:`Runner` is the single execution path shared by the CLI, the
pytest-benchmark harness, and the test suite: resolve a selection of
registered scenarios, bind parameter overrides, derive deterministic
per-scenario seeds, consult the content-addressed cache, and fan the
remaining work out over a ``multiprocessing`` pool. Workers rebuild the
registry by importing :mod:`repro.experiments` — only the picklable job
descriptor crosses the process boundary, never a function object.

Sharded execution
-----------------
A scenario that declares shard hooks (see :mod:`.sharding`) is decomposed
into independent *cells* that fan out across the pool alongside ordinary
jobs. Every unit of work — a whole scenario or one cell — carries a cost
estimate, and the pool schedules expensive units first so the tail stays
short. Cells are cached under their own content-addressed keys the moment
they finish (``imap_unordered`` streams them back), so a killed
paper-scale sweep resumes from its completed cells instead of restarting;
the merged scenario document is cached under the ordinary key once every
cell is in. Cell values travel as the portable encoding
(:func:`~repro.scenarios.encode.to_portable`), which reconstructs the
exact python value, so a merge over pooled or cache-restored cells is
bit-identical to the unsharded in-process run.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from . import registry
from .cache import ResultCache
from .encode import (
    EncodeError,
    canonical_json,
    from_portable,
    to_jsonable,
    to_portable,
)
from .registry import Scenario, ScenarioError
from .sharding import Cell

__all__ = [
    "Runner",
    "ScenarioResult",
    "ScenarioExecutionError",
    "derive_seed",
    "Progress",
]


class ScenarioExecutionError(RuntimeError):
    """A scenario raised; carries the worker-side traceback text."""

    def __init__(self, name: str, params: Mapping[str, Any], tb: str) -> None:
        super().__init__(f"scenario {name!r} failed with params {dict(params)!r}:\n{tb}")
        self.scenario = name
        self.params = dict(params)
        self.worker_traceback = tb


def _apply_scale_env(
    sc: Scenario, params: dict[str, Any], overrides: Mapping[str, Any]
) -> None:
    """Fold the ``REPRO_SCALE`` profile into a scenario's bound params.

    Any scenario accepting a ``scale`` parameter follows the environment
    profile (``ci`` | ``default`` | ``paper``) unless the caller overrode
    ``scale`` explicitly. The substitution happens at bind time so cached
    results are keyed by the *effective* profile, never by ambient
    environment state.
    """
    env = os.environ.get("REPRO_SCALE")
    if env and sc.accepts("scale") and "scale" not in overrides:
        params["scale"] = env


def derive_seed(base_seed: int, name: str) -> int:
    """Stable 32-bit seed for one scenario of a seeded batch run.

    Hash-derived (not ``base_seed + i``) so the seed a scenario gets does
    not depend on which other scenarios were selected alongside it.
    """
    digest = hashlib.sha256(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass
class ScenarioResult:
    """Outcome of one scenario execution (live or cache hit)."""

    name: str
    params: dict[str, Any]
    rows: list[str]
    payload: Any = None
    value: Any = None
    cached: bool = False
    duration_s: float = 0.0
    #: ``(cells computed, cells restored from cache, cells total)`` for a
    #: sharded execution; ``None`` for ordinary scenarios and full-doc hits.
    cells: tuple[int, int, int] | None = None


@dataclass(frozen=True)
class Progress:
    """One completed unit of work, reported to the Runner's callback."""

    done: int
    total: int
    label: str
    duration_s: float
    eta_s: float | None
    failed: bool = False


@dataclass
class _Job:
    scenario: Scenario
    params: dict[str, Any]


#: Relative cost of a whole non-sharded scenario by its registry hint,
#: on the same (arbitrary, comparable) scale shard cells use: a ``heavy``
#: packet scenario is worth a few hundred default-scale cells' load units.
_HINT_COST = {"cheap": 1.0, "medium": 25.0, "heavy": 400.0}

#: Sentinel: the unit's raw python value did not travel (pooled execution).
_NO_VALUE = object()


@dataclass
class _Unit:
    """One schedulable piece of work: a whole scenario or a single cell."""

    uid: int
    job_index: int
    kind: str  # "scenario" | "cell"
    name: str
    params: dict[str, Any]
    cell_key: str | None = None
    cost: float = 1.0
    #: Further job indexes whose plans contain this exact cell (same
    #: scenario, key and params) — the cell runs once and its value fans
    #: out to every owner.
    extra_jobs: list[int] = field(default_factory=list)

    @property
    def job_indexes(self) -> list[int]:
        return [self.job_index, *self.extra_jobs]

    @property
    def label(self) -> str:
        return self.name if self.cell_key is None else f"{self.name}:{self.cell_key}"


@dataclass
class _ShardState:
    """Per-job bookkeeping while a sharded scenario's cells are in flight."""

    plan: list[Cell]
    values: dict[str, Any] = field(default_factory=dict)
    durations: dict[str, float] = field(default_factory=dict)
    restored: int = 0
    error: str | None = None


def _execute(name: str, params: dict[str, Any]) -> tuple[dict[str, Any], Any]:
    """Run one scenario; return (cacheable doc, raw python value)."""
    registry.load_builtin()
    sc = registry.get(name)
    start = time.perf_counter()
    try:
        value = sc.execute(**params)
        duration = time.perf_counter() - start
        # Formatters are scenario code too: a formatter crash must surface
        # as a ScenarioExecutionError with context, not escape the pool raw.
        rows = sc.format(value)
        try:
            payload = to_jsonable(value)
        except EncodeError:
            payload = None
    except Exception:
        doc = {"scenario": name, "params": params, "error": traceback.format_exc()}
        return doc, None
    doc = {
        "scenario": name,
        "params": params,
        "rows": rows,
        "payload": payload,
        "duration_s": duration,
    }
    return doc, value


def _execute_cell(
    name: str, cell_key: str, params: dict[str, Any]
) -> tuple[dict[str, Any], Any]:
    """Run one cell; return (cacheable doc, raw python value).

    The portable encoding *is* the cell's transport and cache format, so a
    cell value outside the portable vocabulary is an execution error (there
    is no rows-only fallback at cell granularity).
    """
    registry.load_builtin()
    sc = registry.get(name)
    start = time.perf_counter()
    try:
        value = sc.run_cell(**params)
        portable = to_portable(value)
    except Exception:
        doc = {
            "scenario": name,
            "cell": cell_key,
            "params": params,
            "error": traceback.format_exc(),
        }
        return doc, None
    doc = {
        "scenario": name,
        "cell": cell_key,
        "params": params,
        "value": portable,
        "duration_s": time.perf_counter() - start,
    }
    return doc, value


def _execute_unit(
    payload: tuple[int, str, str, str | None, dict[str, Any]]
) -> tuple[int, dict[str, Any]]:
    """Pool worker entry: only the picklable doc crosses the boundary."""
    uid, kind, name, cell_key, params = payload
    if kind == "cell":
        assert cell_key is not None
        doc, _value = _execute_cell(name, cell_key, params)
    else:
        doc, _value = _execute(name, params)
    return uid, doc


class Runner:
    """Execute selections of registered scenarios, cached and in parallel.

    Parameters
    ----------
    workers:
        Worker-pool size; ``None`` and values ``<= 1`` run in-process
        (keeping rich python return values available to callers).
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching entirely.
    use_cache:
        When off, the cache (if any) is still *written* but never read —
        matching the CLI's ``--no-cache`` refresh semantics.
    base_seed:
        When set, every selected scenario that accepts a ``seed`` parameter
        and wasn't explicitly overridden gets :func:`derive_seed`'s stable
        per-scenario value instead of its schema default.
    progress:
        Optional callback invoked (in the parent process) with a
        :class:`Progress` record each time a unit of work — a scenario or
        one shard cell — finishes, with a cost-weighted ETA.
    """

    def __init__(
        self,
        workers: int | None = None,
        cache: ResultCache | None = None,
        use_cache: bool = True,
        base_seed: int | None = None,
        progress: Callable[[Progress], None] | None = None,
    ) -> None:
        self.workers = workers
        self.cache = cache
        self.use_cache = use_cache
        self.base_seed = base_seed
        self.progress = progress

    # ------------------------------------------------------------ resolution

    def resolve(
        self,
        names: Iterable[str] = (),
        tags: Iterable[str] = (),
        overrides: Mapping[str, Any] | None = None,
    ) -> list[_Job]:
        """Selection -> fully-bound jobs (overrides coerced per scenario).

        A single override set applies across the whole selection: each key
        must be accepted by at least one selected scenario (else it is a
        typo and raises), and binds loosely everywhere else.
        """
        scenarios = registry.select(names, tags)
        overrides = dict(overrides or {})
        for key in overrides:
            if not any(sc.accepts(key) for sc in scenarios):
                accepted = sorted({p for sc in scenarios for p in sc.params})
                raise ScenarioError(
                    f"no selected scenario accepts parameter {key!r} "
                    f"(accepted: {', '.join(accepted) or 'none'})"
                )
        strict = len(scenarios) == 1
        return [
            _Job(sc, self._bind_with_seed(sc, overrides, strict=strict))
            for sc in scenarios
        ]

    def _bind_with_seed(
        self, sc: Scenario, overrides: Mapping[str, Any], *, strict: bool = True
    ) -> dict[str, Any]:
        """Bind overrides, then apply the seed and scale-profile policies."""
        params = sc.bind(overrides, strict=strict)
        if (
            self.base_seed is not None
            and sc.accepts("seed")
            and "seed" not in overrides
        ):
            params["seed"] = derive_seed(self.base_seed, sc.name)
        _apply_scale_env(sc, params, overrides)
        return params

    # ------------------------------------------------------------- execution

    def execute(self, name: str, **overrides: Any) -> Any:
        """Run one scenario in-process and return its raw python value.

        This is the benchmark entry point: same registry, same parameter
        binding and validation as the CLI, no cache, no pool — so a
        pytest-benchmark measurement times exactly the scenario body.
        """
        sc = registry.get(name)
        params = sc.bind(overrides)
        _apply_scale_env(sc, params, overrides)
        return sc.execute(**params)

    def run(
        self,
        names: Iterable[str] = (),
        tags: Iterable[str] = (),
        overrides: Mapping[str, Any] | None = None,
    ) -> list[ScenarioResult]:
        """Resolve a selection and execute it; results in selection order."""
        return self._run_jobs(self.resolve(names, tags, overrides))

    def sweep(
        self,
        name: str,
        grid: Mapping[str, Sequence[Any]],
        overrides: Mapping[str, Any] | None = None,
    ) -> list[ScenarioResult]:
        """Run ``name`` once per point of the cartesian parameter grid."""
        sc = registry.get(name)
        fixed = dict(overrides or {})
        keys = list(grid)
        jobs = []
        for combo in itertools.product(*(grid[k] for k in keys)):
            point = dict(fixed)
            point.update(zip(keys, combo))
            jobs.append(_Job(sc, self._bind_with_seed(sc, point)))
        return self._run_jobs(jobs)

    # -------------------------------------------------------------- internal

    def _read_cache(self) -> bool:
        return self.cache is not None and self.use_cache

    def _decompose(
        self, jobs: list[_Job], results: dict[int, ScenarioResult]
    ) -> tuple[list[_Unit], dict[int, _ShardState]]:
        """Cache-check every job and expand the misses into work units.

        Ordinary scenarios become one unit each; shardable scenarios expand
        into one unit per cell-cache miss, with cells already in the cache
        restored to the job's shard state immediately.
        """
        units: list[_Unit] = []
        shard_states: dict[int, _ShardState] = {}
        # Sweep points often share cells (same scenario, key, params —
        # e.g. two `networks` grids both containing opera@0.25): run each
        # distinct cell once per batch and fan its value out to every
        # owning job.
        pending_cells: dict[tuple[str, str, str], _Unit] = {}
        for i, job in enumerate(jobs):
            sc = job.scenario
            doc = (
                self.cache.get(sc.name, job.params) if self._read_cache() else None
            )
            if doc is not None and "rows" in doc:
                results[i] = ScenarioResult(
                    name=sc.name,
                    params=job.params,
                    rows=list(doc["rows"]),
                    payload=doc.get("payload"),
                    cached=True,
                    duration_s=float(doc.get("duration_s", 0.0)),
                )
                continue
            if not sc.shardable:
                units.append(
                    _Unit(
                        uid=len(units),
                        job_index=i,
                        kind="scenario",
                        name=sc.name,
                        params=job.params,
                        cost=_HINT_COST.get(sc.cost, 1.0),
                    )
                )
                continue
            try:
                state = _ShardState(plan=sc.shard_plan(**job.params))
            except Exception:
                # Decomposition happens before any work runs, so aborting
                # here loses nothing — but it is still scenario code failing
                # and must carry scenario context.
                raise ScenarioExecutionError(
                    sc.name, job.params, traceback.format_exc()
                ) from None
            shard_states[i] = state
            for cell in state.plan:
                cdoc = (
                    self.cache.get_cell(sc.name, cell.key, cell.params)
                    if self._read_cache()
                    else None
                )
                if cdoc is not None and "value" in cdoc:
                    state.values[cell.key] = from_portable(cdoc["value"])
                    state.durations[cell.key] = float(cdoc.get("duration_s", 0.0))
                    state.restored += 1
                    continue
                dedup = (sc.name, cell.key, canonical_json(cell.params))
                if dedup in pending_cells:
                    pending_cells[dedup].extra_jobs.append(i)
                    continue
                unit = _Unit(
                    uid=len(units),
                    job_index=i,
                    kind="cell",
                    name=sc.name,
                    params=cell.params,
                    cell_key=cell.key,
                    cost=cell.cost,
                )
                pending_cells[dedup] = unit
                units.append(unit)
        return units, shard_states

    def _serial_stream(
        self, ordered: list[_Unit]
    ) -> Iterator[tuple[_Unit, dict[str, Any], Any]]:
        for unit in ordered:
            if unit.kind == "cell":
                assert unit.cell_key is not None
                doc, value = _execute_cell(unit.name, unit.cell_key, unit.params)
            else:
                doc, value = _execute(unit.name, unit.params)
            yield unit, doc, value

    def _pool_stream(
        self, ordered: list[_Unit], n_workers: int
    ) -> Iterator[tuple[_Unit, dict[str, Any], Any]]:
        """Stream unit docs back as workers finish them.

        ``imap_unordered(chunksize=1)`` lets short units return while long
        cells are still running, so successes are cached (and failures
        surfaced through the progress callback) without waiting for the
        whole batch.
        """
        by_uid = {unit.uid: unit for unit in ordered}
        payloads = [
            (u.uid, u.kind, u.name, u.cell_key, u.params) for u in ordered
        ]
        with multiprocessing.Pool(min(n_workers, len(ordered))) as pool:
            for uid, doc in pool.imap_unordered(_execute_unit, payloads, chunksize=1):
                yield by_uid[uid], doc, _NO_VALUE

    def _run_jobs(self, jobs: list[_Job]) -> list[ScenarioResult]:
        results: dict[int, ScenarioResult] = {}
        units, shard_states = self._decompose(jobs, results)

        # Schedule expensive units first so the pool tail is short. Sweep
        # points and shard cells carry real cost estimates (e.g. load
        # descending for FCT grids); plain scenarios rank by their hint.
        ordered = sorted(units, key=lambda u: (-u.cost, u.uid))

        n_workers = self.workers or 0
        if n_workers > 1 and len(ordered) > 1:
            stream = self._pool_stream(ordered, n_workers)
        else:
            stream = self._serial_stream(ordered)

        # Cache every success the moment it streams back, and only surface
        # the first failure after the batch drains: one bad scenario or cell
        # must not throw away minutes of completed work.
        failure: ScenarioExecutionError | None = None
        total_cost = sum(u.cost for u in ordered) or 1.0
        done_cost = 0.0
        started = time.perf_counter()
        for done, (unit, doc, value) in enumerate(stream, start=1):
            failed = "error" in doc
            if unit.kind == "cell":
                if failed:
                    for j in unit.job_indexes:
                        shard_states[j].error = doc["error"]
                    if failure is None:
                        failure = ScenarioExecutionError(
                            f"{unit.name}[{unit.cell_key}]", unit.params, doc["error"]
                        )
                else:
                    if self.cache is not None:
                        assert unit.cell_key is not None
                        self.cache.put_cell(
                            unit.name, unit.cell_key, unit.params, doc
                        )
                    cell_value = (
                        from_portable(doc["value"]) if value is _NO_VALUE else value
                    )
                    for j in unit.job_indexes:
                        state = shard_states[j]
                        state.values[unit.cell_key] = cell_value
                        state.durations[unit.cell_key] = float(doc["duration_s"])
            else:
                job = jobs[unit.job_index]
                if failed:
                    if failure is None:
                        failure = ScenarioExecutionError(
                            unit.name, unit.params, doc["error"]
                        )
                else:
                    if self.cache is not None:
                        self.cache.put(unit.name, unit.params, doc)
                    results[unit.job_index] = ScenarioResult(
                        name=unit.name,
                        params=job.params,
                        rows=list(doc["rows"]),
                        payload=doc.get("payload"),
                        value=None if value is _NO_VALUE else value,
                        cached=False,
                        duration_s=float(doc.get("duration_s", 0.0)),
                    )
            done_cost += unit.cost
            if self.progress is not None:
                elapsed = time.perf_counter() - started
                eta = (
                    elapsed * (total_cost - done_cost) / done_cost
                    if done_cost > 0
                    else None
                )
                self.progress(
                    Progress(
                        done=done,
                        total=len(ordered),
                        label=unit.label,
                        duration_s=float(doc.get("duration_s", 0.0)),
                        eta_s=eta,
                        failed=failed,
                    )
                )

        failure = self._merge_shards(jobs, shard_states, results, failure)
        if failure is not None:
            raise failure
        return [results[i] for i in range(len(jobs))]

    def _merge_shards(
        self,
        jobs: list[_Job],
        shard_states: dict[int, _ShardState],
        results: dict[int, ScenarioResult],
        failure: ScenarioExecutionError | None,
    ) -> ScenarioExecutionError | None:
        """Fold completed cell sets into scenario results (and the cache)."""
        for i, state in sorted(shard_states.items()):
            if state.error is not None:
                continue  # cell failure already recorded; siblings are cached
            job = jobs[i]
            sc = job.scenario
            try:
                values = [state.values[cell.key] for cell in state.plan]
                merged = sc.merge(values, **job.params)
                rows = sc.format(merged)
                try:
                    payload = to_jsonable(merged)
                except EncodeError:
                    payload = None
            except Exception:
                if failure is None:
                    failure = ScenarioExecutionError(
                        sc.name, job.params, traceback.format_exc()
                    )
                continue
            duration = sum(state.durations.values())
            computed = len(state.plan) - state.restored
            doc = {
                "scenario": sc.name,
                "params": job.params,
                "rows": rows,
                "payload": payload,
                "duration_s": duration,
                "cells": {"total": len(state.plan), "computed": computed},
            }
            if self.cache is not None:
                self.cache.put(sc.name, job.params, doc)
            results[i] = ScenarioResult(
                name=sc.name,
                params=job.params,
                rows=rows,
                payload=payload,
                value=merged,
                cached=computed == 0,
                duration_s=duration,
                cells=(computed, state.restored, len(state.plan)),
            )
        return failure
