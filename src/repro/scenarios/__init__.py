"""Scenario registry + parallel experiment runner.

The seam between "a paper artifact exists as a module" and "anything can
run it": experiments register a declarative :class:`Scenario` (name,
parameter schema, tags, cost hint) and every consumer — the CLI, the
benchmark harness, sweeps, future workloads — goes through the shared
:class:`Runner`, which adds deterministic per-scenario seeding, a
content-addressed on-disk result cache, and a multiprocessing worker
pool. See ``README.md`` ("Scenario API") for the user-facing guide.
"""

from .cache import CACHE_FORMAT_VERSION, ResultCache, default_cache_dir
from .encode import (
    EncodeError,
    canonical_json,
    content_hash,
    from_portable,
    to_jsonable,
    to_portable,
)
from .registry import (
    Param,
    Scenario,
    ScenarioError,
    all_scenarios,
    all_tags,
    get,
    load_builtin,
    register,
    scenario,
    select,
)
from .runner import (
    Progress,
    Runner,
    ScenarioExecutionError,
    ScenarioResult,
    derive_seed,
)
from .sharding import Cell, calibrate_costs, derive_cell_seed, validate_plan

__all__ = [
    "CACHE_FORMAT_VERSION",
    "ResultCache",
    "default_cache_dir",
    "EncodeError",
    "canonical_json",
    "content_hash",
    "from_portable",
    "to_jsonable",
    "to_portable",
    "Param",
    "Scenario",
    "ScenarioError",
    "all_scenarios",
    "all_tags",
    "get",
    "load_builtin",
    "register",
    "scenario",
    "select",
    "Progress",
    "Runner",
    "ScenarioExecutionError",
    "ScenarioResult",
    "derive_seed",
    "Cell",
    "calibrate_costs",
    "derive_cell_seed",
    "validate_plan",
]
