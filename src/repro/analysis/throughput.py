"""Flow-level throughput models (paper section 5.6, Figures 10, 12, 15).

The paper evaluates cost-equivalent networks on skewed-to-uniform traffic
matrices. We model each network the way its own evaluation ran it:

* **Folded Clos** — NDP over ECMP in a non-blocking core: throughput is
  bound by the ToR uplink oversubscription, independent of pattern.
* **Static expander** — NDP sprays over *shortest paths only*; we compute
  exact per-link loads under equal splitting across all shortest paths
  (a Brandes-style DAG accumulation) and take the max-loaded link as the
  bottleneck. This reproduces the paper's observation that expander
  throughput falls as traffic becomes less skewed (more of the fabric's
  capacity goes to multi-hop bandwidth tax).
* **Opera** — RotorLB fluid model at slice granularity: demand rides
  time-multiplexed direct circuits (no tax) when supply allows, and
  overflows onto two-hop Valiant load balancing (100% tax, spread over all
  racks). Feasibility of a throughput scale is checked against per-rack
  egress/ingress circuit capacity and per-pair direct supply; the maximum
  feasible scale is found by bisection.

Throughput is normalized per host link: 1.0 means every sending host
sustains its full NIC rate.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from ..topologies.expander import ExpanderTopology

__all__ = [
    "clos_throughput",
    "expander_link_loads",
    "expander_throughput",
    "RotorFluidModel",
    "opera_throughput",
]


def clos_throughput(
    demand: np.ndarray, oversubscription: float, hosts_per_rack: int
) -> float:
    """Max uniform demand scale for an F:1 folded Clos (ECMP, ideal core).

    Each rack's uplink capacity is ``d / F`` host links; the core above the
    ToRs is non-blocking, so only per-rack egress/ingress bind.
    """
    if oversubscription < 1:
        raise ValueError("oversubscription must be >= 1")
    egress = demand.sum(axis=1)
    ingress = demand.sum(axis=0)
    peak = max(float(egress.max()), float(ingress.max()))
    if peak <= 0:
        return 1.0
    uplink_capacity = hosts_per_rack / oversubscription
    return min(1.0, uplink_capacity / peak)


# --------------------------------------------------------------- expander


def _bfs_dag(adj: Sequence[Sequence[int]], src: int) -> tuple[list[int], list[int]]:
    """Distances and shortest-path counts from ``src``."""
    n = len(adj)
    dist = [-1] * n
    sigma = [0] * n
    dist[src] = 0
    sigma[src] = 1
    queue = deque([src])
    while queue:
        v = queue.popleft()
        for w in adj[v]:
            if dist[w] == -1:
                dist[w] = dist[v] + 1
                queue.append(w)
            if dist[w] == dist[v] + 1:
                sigma[w] += sigma[v]
    return dist, sigma


def expander_link_loads(
    adjacency: Sequence[Sequence[int]], demand: np.ndarray
) -> dict[tuple[int, int], float]:
    """Per-directed-link load under equal splitting over shortest paths.

    ``adjacency[v]`` lists neighbour racks (parallel links merged; the
    caller scales capacity accordingly). Runs one Brandes-style accumulation
    per source: O(V * E) for any demand matrix.
    """
    n = len(adjacency)
    loads: dict[tuple[int, int], float] = {}
    for src in range(n):
        row = demand[src]
        if not row.any():
            continue
        dist, sigma = _bfs_dag(adjacency, src)
        # Accumulate flow through each node, deepest first.
        order = sorted(
            (v for v in range(n) if dist[v] > 0), key=lambda v: -dist[v]
        )
        through = [0.0] * n  # flow entering v that continues or terminates
        for v in order:
            through[v] += float(row[v])
        for v in order:
            if through[v] <= 0:
                continue
            preds = [w for w in adjacency[v] if dist[w] == dist[v] - 1]
            total_sigma = sum(sigma[w] for w in preds)
            for w in preds:
                share = through[v] * sigma[w] / total_sigma
                loads[(w, v)] = loads.get((w, v), 0.0) + share
                if w != src:
                    through[w] += share
    return loads


def _k_shortest_link_loads(
    neighbor_sets: list[list[int]],
    demand: np.ndarray,
    pairs: list[tuple[int, int]],
    k_paths: int = 8,
) -> dict[tuple[int, int], float]:
    """Equal split over the k shortest simple paths of each demand pair.

    Models the k-shortest-path multipath routing used by expander
    evaluations (Jellyfish/Xpander); only viable for sparse demands.
    """
    import itertools

    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(range(len(neighbor_sets)))
    for a, peers in enumerate(neighbor_sets):
        for b in peers:
            graph.add_edge(a, b)
    loads: dict[tuple[int, int], float] = {}
    for a, b in pairs:
        paths = list(
            itertools.islice(nx.shortest_simple_paths(graph, a, b), k_paths)
        )
        share = float(demand[a][b]) / len(paths)
        for path in paths:
            for u, v in zip(path, path[1:]):
                loads[(u, v)] = loads.get((u, v), 0.0) + share
    return loads


def expander_throughput(
    topology: ExpanderTopology,
    demand: np.ndarray,
    sparse_pair_threshold: int = 16,
    k_paths: int = 8,
) -> float:
    """Max demand scale for an expander under NDP multipath spraying.

    Dense demands use equal splitting over all shortest paths (per-packet
    ECMP, computed exactly); very sparse demands (at most
    ``sparse_pair_threshold`` rack pairs, e.g. a single hot rack) use the
    k-shortest-simple-paths spreading that expander proposals employ, since
    a lone flow can profitably use slightly longer paths. The bottleneck is
    the most-loaded inter-ToR link (parallel matchings between a rack pair
    scale its capacity), with sending hosts additionally capped at line
    rate.
    """
    multiplicity: dict[tuple[int, int], int] = {}
    neighbor_sets: list[list[int]] = []
    for rack, edges in enumerate(topology.adjacency):
        peers = sorted({peer for peer, _port in edges})
        neighbor_sets.append(peers)
        for peer, _port in edges:
            key = (rack, peer)
            multiplicity[key] = multiplicity.get(key, 0) + 1
    pairs = [tuple(p) for p in np.argwhere(demand > 0)]
    if 0 < len(pairs) <= sparse_pair_threshold:
        loads = _k_shortest_link_loads(neighbor_sets, demand, pairs, k_paths)
    else:
        loads = expander_link_loads(neighbor_sets, demand)
    worst = 0.0
    for (a, b), load in loads.items():
        capacity = multiplicity[(a, b)]
        worst = max(worst, load / capacity)
    if worst <= 0:
        return 1.0
    return min(1.0, 1.0 / worst)


# ------------------------------------------------------------------ Opera


class RotorFluidModel:
    """RotorLB fluid feasibility/throughput for rotor networks.

    Parameters
    ----------
    n_racks, uplinks:
        Shape of the rotor fabric.
    duty_cycle:
        Usable fraction of circuit time (reconfiguration + guard bands).
    up_fraction:
        Fraction of uplinks usable per slice: Opera drains one switch
        (``(u - 1) / u``); lockstep RotorNet uses all (``1.0``).
    direct_fraction:
        Fraction of time a given rack pair has an up direct circuit
        (Opera: ``(group_size - 1) / cycle_slices``; RotorNet:
        ``u / n_racks``).
    """

    def __init__(
        self,
        n_racks: int,
        uplinks: int,
        duty_cycle: float = 1.0,
        up_fraction: float | None = None,
        direct_fraction: float | None = None,
    ) -> None:
        self.n_racks = n_racks
        self.uplinks = uplinks
        self.duty_cycle = duty_cycle
        if up_fraction is None:
            up_fraction = (uplinks - 1) / uplinks
        self.up_links = uplinks * up_fraction
        if direct_fraction is None:
            direct_fraction = (uplinks - 1) / n_racks
        self.direct_fraction = direct_fraction

    @property
    def rack_capacity(self) -> float:
        """Egress (= ingress) circuit capacity per rack, in host links."""
        return self.up_links * self.duty_cycle

    def feasible(
        self,
        demand: np.ndarray,
        scale: float,
        extra_rack_load: float = 0.0,
    ) -> bool:
        """Can RotorLB carry ``scale * demand`` (+ background per rack)?"""
        n = self.n_racks
        cap = self.rack_capacity - extra_rack_load
        if cap <= 0:
            return False
        scaled = scale * demand
        supply = self.direct_fraction * self.duty_cycle
        direct = np.minimum(scaled, supply)
        vlb = scaled - direct
        total_vlb = float(vlb.sum())
        relay_each = total_vlb / max(n - 2, 1)
        egress = direct.sum(axis=1) + vlb.sum(axis=1) + relay_each
        ingress = direct.sum(axis=0) + vlb.sum(axis=0) + relay_each
        if egress.max() > cap + 1e-12 or ingress.max() > cap + 1e-12:
            return False
        # Second VLB hops ride direct circuits toward the destination: in
        # aggregate the relays' circuit time toward ``b`` (net of their own
        # direct traffic to ``b``) must cover everything relayed to ``b``.
        # RotorLB's offer/accept steers relay traffic to where spare circuit
        # time exists, so the aggregate bound is the right fluid limit.
        relay_to_dst = vlb.sum(axis=0)
        spare_to_dst = supply * (n - 2) - direct.sum(axis=0)
        if np.any(relay_to_dst > spare_to_dst + 1e-12):
            return False
        return True

    def throughput(
        self,
        demand: np.ndarray,
        extra_rack_load: float = 0.0,
        tolerance: float = 1e-4,
    ) -> float:
        """Max feasible uniform scale of ``demand`` (bisection), capped at 1."""
        if demand.max() <= 0:
            return 1.0
        lo, hi = 0.0, 1.0
        if not self.feasible(demand, hi, extra_rack_load):
            while hi - lo > tolerance:
                mid = (lo + hi) / 2
                if self.feasible(demand, mid, extra_rack_load):
                    lo = mid
                else:
                    hi = mid
            return lo
        return 1.0


def opera_throughput(
    demand: np.ndarray,
    n_racks: int,
    uplinks: int,
    duty_cycle: float = 0.983,
    group_size: int | None = None,
    low_latency_load: float = 0.0,
    avg_path_length: float = 3.3,
    hosts_per_rack: int | None = None,
) -> float:
    """Opera bulk throughput for a rack-level demand matrix.

    ``low_latency_load`` is background low-latency traffic per host (as a
    fraction of its NIC); it consumes ``avg_path_length`` times its volume
    from every rack's circuit capacity (the bandwidth tax of multi-hop
    forwarding), reducing what RotorLB can use (Figure 10's trade-off).
    """
    group = group_size if group_size is not None else uplinks
    cycle_slices = group * (n_racks // uplinks)
    model = RotorFluidModel(
        n_racks,
        uplinks,
        duty_cycle=duty_cycle,
        up_fraction=(uplinks - 1) / uplinks,
        direct_fraction=(group - 1) / cycle_slices,
    )
    extra = 0.0
    if low_latency_load > 0:
        d = hosts_per_rack if hosts_per_rack is not None else uplinks
        extra = low_latency_load * d * avg_path_length
    return model.throughput(demand, extra_rack_load=extra)
