"""Expansion analysis: spectral gaps of slices and expanders (Appendix D).

The spectral gap of a ``d``-regular graph — ``d`` minus the second-largest
adjacency eigenvalue — measures how close it is to an optimal Ramanujan
expander (whose gap approaches ``d - 2 sqrt(d - 1)``); larger gaps mean
better expansion [6, 25]. The paper evaluates the gap of all 108 topology
slices of the reference Opera network against static expanders of varying
``d:u`` ratio (Figure 17) and finds Opera's slices near-optimal despite the
disjointness constraints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.routing import SliceRoutes, build_adjacency
from ..core.schedule import OperaSchedule
from ..topologies.expander import ExpanderTopology

__all__ = [
    "SpectralReport",
    "adjacency_matrix",
    "spectral_gap",
    "ramanujan_gap",
    "opera_slice_spectra",
    "expander_spectrum",
]


@dataclass(frozen=True)
class SpectralReport:
    """Expansion and path metrics for one graph (one Figure 17 point)."""

    label: str
    degree: float
    spectral_gap: float
    average_path_length: float
    worst_path_length: int

    @property
    def ramanujan_fraction(self) -> float:
        """Gap relative to the Ramanujan optimum (1.0 = optimal)."""
        best = ramanujan_gap(self.degree)
        return self.spectral_gap / best if best > 0 else math.inf


def adjacency_matrix(adjacency: Sequence[Sequence[tuple[int, int]]]) -> np.ndarray:
    """Dense adjacency matrix with parallel-edge multiplicity."""
    n = len(adjacency)
    mat = np.zeros((n, n))
    for rack, edges in enumerate(adjacency):
        for peer, _port in edges:
            mat[rack][peer] += 1.0
    return mat


def spectral_gap(matrix: np.ndarray) -> float:
    """Average degree minus the second-largest adjacency eigenvalue."""
    if matrix.shape[0] < 2:
        raise ValueError("need at least two vertices")
    eigenvalues = np.linalg.eigvalsh(matrix)
    degree = float(matrix.sum(axis=1).mean())
    return degree - float(eigenvalues[-2])


def ramanujan_gap(degree: float) -> float:
    """The optimal (Ramanujan) spectral gap ``d - 2 sqrt(d - 1)``."""
    if degree < 1:
        raise ValueError("degree must be >= 1")
    return degree - 2.0 * math.sqrt(degree - 1.0)


def _path_stats(routes: SliceRoutes) -> tuple[float, int]:
    counts = routes.path_length_counts()
    total = sum(counts.values())
    avg = sum(h * c for h, c in counts.items()) / total
    return avg, max(counts)


def opera_slice_spectra(
    schedule: OperaSchedule, slices: Sequence[int] | None = None
) -> list[SpectralReport]:
    """One :class:`SpectralReport` per topology slice (Figure 17 points)."""
    if slices is None:
        slices = range(schedule.cycle_slices)
    reports = []
    for s in slices:
        adj = build_adjacency(schedule, s)
        mat = adjacency_matrix(adj)
        routes = SliceRoutes(adj)
        avg, worst = _path_stats(routes)
        reports.append(
            SpectralReport(
                label=f"opera-slice-{s}",
                degree=float(mat.sum(axis=1).mean()),
                spectral_gap=spectral_gap(mat),
                average_path_length=avg,
                worst_path_length=worst,
            )
        )
    return reports


def expander_spectrum(topology: ExpanderTopology) -> SpectralReport:
    """Spectral/path report for a static expander (Figure 17 comparison)."""
    mat = adjacency_matrix(topology.adjacency)
    avg, worst = _path_stats(topology.routes)
    return SpectralReport(
        label=f"expander-u{topology.uplinks}",
        degree=float(mat.sum(axis=1).mean()),
        spectral_gap=spectral_gap(mat),
        average_path_length=avg,
        worst_path_length=worst,
    )
