"""Path-length distributions across topologies (Figures 4 and 16, App. C).

Opera's path-length CDF aggregates shortest-path hop counts over *all*
topology slices and rack pairs; the expander's is over its single static
graph; the folded Clos has the fixed 2-hop (intra-pod) / 4-hop (core)
structure. Figure 16 tracks average path length as the network scales from
k=12 to k=48 at several expander cost points.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Sequence

from ..core.routing import OperaRouting, build_adjacency
from ..core.schedule import OperaSchedule
from ..topologies.expander import ExpanderTopology
from ..topologies.folded_clos import FoldedClos

__all__ = [
    "PathLengthDistribution",
    "opera_path_lengths",
    "expander_path_lengths",
    "clos_path_lengths",
    "sampled_average_path_length",
]


@dataclass(frozen=True)
class PathLengthDistribution:
    """A hop-count histogram with CDF/statistics helpers."""

    label: str
    counts: dict[int, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def cdf(self) -> list[tuple[int, float]]:
        """``(hops, cumulative fraction)`` points, ascending."""
        acc = 0
        out = []
        for hops in sorted(self.counts):
            acc += self.counts[hops]
            out.append((hops, acc / self.total))
        return out

    def fraction_at_most(self, hops: int) -> float:
        return sum(c for h, c in self.counts.items() if h <= hops) / self.total

    def average(self) -> float:
        return sum(h * c for h, c in self.counts.items()) / self.total

    def worst(self) -> int:
        return max(self.counts)


def opera_path_lengths(
    schedule: OperaSchedule, slices: Sequence[int] | None = None
) -> PathLengthDistribution:
    """Aggregate hop histogram over topology slices (Figure 4, Opera)."""
    routing = OperaRouting(schedule)
    counts: dict[int, int] = {}
    for s in slices if slices is not None else range(schedule.cycle_slices):
        for hops, c in routing.routes(s).path_length_counts().items():
            counts[hops] = counts.get(hops, 0) + c
    return PathLengthDistribution("opera", counts)


def expander_path_lengths(topology: ExpanderTopology) -> PathLengthDistribution:
    return PathLengthDistribution(
        f"expander-u{topology.uplinks}", topology.path_length_counts()
    )


def clos_path_lengths(clos: FoldedClos) -> PathLengthDistribution:
    return PathLengthDistribution(
        f"clos-{clos.oversubscription}to1", clos.path_length_counts()
    )


def sampled_average_path_length(
    schedule: OperaSchedule,
    n_slices: int = 8,
    n_sources: int = 64,
    seed: int = 0,
) -> float:
    """Monte-Carlo average hops for large networks (Figure 16 at k=48).

    All-pairs BFS over every slice is quadratic in racks and linear in
    slices; for scaling studies we sample slices and BFS sources instead.
    """
    rng = random.Random(seed)
    slices = sorted(
        rng.sample(range(schedule.cycle_slices), min(n_slices, schedule.cycle_slices))
    )
    total = 0
    count = 0
    n = schedule.n_racks
    for s in slices:
        adj = build_adjacency(schedule, s)
        neighbor = [[p for p, _w in edges] for edges in adj]
        sources = rng.sample(range(n), min(n_sources, n))
        for src in sources:
            dist = [-1] * n
            dist[src] = 0
            queue = deque([src])
            while queue:
                v = queue.popleft()
                for w in neighbor[v]:
                    if dist[w] == -1:
                        dist[w] = dist[v] + 1
                        queue.append(w)
            for dst in range(n):
                if dst != src and dist[dst] > 0:
                    total += dist[dst]
                    count += 1
    return total / count if count else float("nan")
