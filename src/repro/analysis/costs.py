"""Cost-normalization model (paper section 5.6, Appendix A, Table 2).

All cross-topology comparisons in the paper hold *cost* constant, not
equipment count. The key parameter is

    alpha = cost of an Opera "port" / cost of a static network "port"

where a static port is (ToR port + SR transceiver + fiber) and an Opera port
adds the amortized rotor-switch components. Equivalently, alpha is the cost
of core ports per edge (server-facing) port:

* folded Clos, ``T`` tiers, ``F``:1 oversubscribed at the ToR:
  ``alpha = 2 (T - 1) / F``;
* static expander with ``u`` of ``k`` ToR ports facing the network:
  ``alpha = u / (k - u)``;
* Opera (1:1 provisioned, ``u = d = k/2``): every core port costs alpha, so
  the figure of merit is alpha itself.

With the component costs of Table 2, alpha ~= 1.3, which sizes the paper's
cost-equivalent trio: 648-host Opera, 3:1 folded Clos (648 hosts), and
u=7 expander (650 hosts) — reproduced exactly by these functions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "STATIC_PORT_COSTS",
    "OPERA_PORT_COSTS",
    "port_cost",
    "alpha_estimate",
    "clos_oversubscription_for_alpha",
    "clos_hosts",
    "expander_uplinks_for_alpha",
    "expander_racks_for_hosts",
    "EquivalentNetworks",
    "cost_equivalent_networks",
]

#: Per-port component costs (USD) for a static packet-switched network,
#: from Table 2 / reference [29].
STATIC_PORT_COSTS: dict[str, float] = {
    "sr_transceiver": 80.0,
    "optical_fiber": 45.0,  # $0.3/m, 150 m average run
    "tor_port": 90.0,
}

#: Additional rotor-switch components per duplex fiber port (Table 2),
#: amortized over ~512-port rotor switches.
OPERA_PORT_COSTS: dict[str, float] = {
    **STATIC_PORT_COSTS,
    "optical_fiber_array": 30.0,
    "optical_lenses": 15.0,
    "beam_steering_element": 5.0,
    "optical_mapping": 10.0,
}


def port_cost(components: dict[str, float]) -> float:
    """Total per-port cost of a component breakdown."""
    return sum(components.values())


def alpha_estimate() -> float:
    """The paper's estimated alpha (~1.3) from the Table 2 components."""
    return port_cost(OPERA_PORT_COSTS) / port_cost(STATIC_PORT_COSTS)


def clos_oversubscription_for_alpha(alpha: float, tiers: int = 3) -> float:
    """Oversubscription ``F`` of the cost-equivalent folded Clos.

    From ``alpha = 2 (T - 1) / F``. With T=3 and alpha=1.3 this gives
    F ~= 3.1, the paper's "3:1 folded Clos".
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if tiers < 2:
        raise ValueError("a folded Clos needs at least two tiers")
    return 2 * (tiers - 1) / alpha


def clos_hosts(k: int, alpha: float, tiers: int = 3) -> float:
    """Hosts supported by the cost-equivalent folded Clos (Appendix A).

    ``H = (4F / (F + 1)) * (k / 2)^T``. With k=12, F=3: exactly 648.
    """
    f = clos_oversubscription_for_alpha(alpha, tiers)
    return (4 * f / (f + 1)) * (k / 2) ** tiers


def expander_uplinks_for_alpha(k: int, alpha: float) -> int:
    """ToR uplinks ``u`` of the cost-equivalent static expander.

    From ``alpha = u / (k - u)``: ``u = k * alpha / (1 + alpha)``, rounded
    to the nearest whole port. k=12, alpha=1.3 gives the u=7 expander.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    u = round(k * alpha / (1 + alpha))
    return min(max(u, 1), k - 1)


def expander_racks_for_hosts(k: int, alpha: float, n_hosts: int) -> int:
    """Racks the cost-equivalent expander needs for ``n_hosts`` (even)."""
    d = k - expander_uplinks_for_alpha(k, alpha)
    racks = -(-n_hosts // d)  # ceil
    return racks + (racks % 2)


@dataclass(frozen=True)
class EquivalentNetworks:
    """Sizing of the paper's cost-equivalent comparison trio."""

    k: int
    alpha: float
    n_hosts: int
    # Opera: 1:1 provisioned ToRs.
    opera_racks: int
    opera_uplinks: int
    opera_hosts_per_rack: int
    # Folded Clos.
    clos_oversubscription: float
    # Static expander.
    expander_racks: int
    expander_uplinks: int
    expander_hosts_per_rack: int


def cost_equivalent_networks(
    k: int, alpha: float = 1.3, n_racks: int | None = None
) -> EquivalentNetworks:
    """Size the Opera / folded Clos / expander trio at equal cost.

    Defaults reproduce the paper's 648-host k=12 comparison: a 108-rack
    Opera network, a 3:1 folded Clos, and a 130-rack u=7 expander with 650
    hosts (the expander rounds up to keep racks whole).
    """
    from ..core.topology import default_rack_count

    opera_racks = n_racks if n_racks is not None else default_rack_count(k)
    d = k // 2
    n_hosts = opera_racks * d
    u_exp = expander_uplinks_for_alpha(k, alpha)
    return EquivalentNetworks(
        k=k,
        alpha=alpha,
        n_hosts=n_hosts,
        opera_racks=opera_racks,
        opera_uplinks=d,
        opera_hosts_per_rack=d,
        clos_oversubscription=clos_oversubscription_for_alpha(alpha),
        expander_racks=expander_racks_for_hosts(k, alpha, n_hosts),
        expander_uplinks=u_exp,
        expander_hosts_per_rack=k - u_exp,
    )
