"""Fault-tolerance analysis (paper section 5.5, Figures 11, 18–20, App. E).

For a given failure set we step through Opera's topology slices and record

* **connectivity loss** — the fraction of (non-failed) ToR pairs that are
  disconnected, both in the *worst slice* and *across all slices* (pairs
  disconnected in at least one slice); and
* **path stretch** — average and worst finite path lengths, since routing
  around failures lengthens paths.

The same metrics are computed for the cost-equivalent 3:1 folded Clos and
u=7 expander baselines (Figures 19 and 20). All graphs are small enough for
exact all-pairs BFS.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.faults import FailureSet
from ..core.routing import SliceRoutes, build_adjacency
from ..core.schedule import OperaSchedule
from ..topologies.expander import ExpanderTopology
from ..topologies.folded_clos import FoldedClos

__all__ = [
    "ConnectivityReport",
    "opera_failure_report",
    "expander_failure_report",
    "clos_failure_report",
    "PAPER_FAILURE_FRACTIONS",
]

#: The x-axis of Figures 11 and 18-20.
PAPER_FAILURE_FRACTIONS = (0.01, 0.025, 0.05, 0.10, 0.20, 0.40)


@dataclass(frozen=True)
class ConnectivityReport:
    """Failure metrics for one network and failure draw."""

    label: str
    #: Fraction of live ToR pairs disconnected in the worst topology slice.
    worst_slice_loss: float
    #: Fraction of live ToR pairs disconnected in at least one slice.
    any_slice_loss: float
    #: Mean finite path length (ToR-to-ToR hops), across slices and pairs.
    average_path_length: float
    #: Max finite path length observed.
    worst_path_length: int


def _pair_metrics(
    dist_rows: Sequence[Sequence[int]], live: Sequence[int]
) -> tuple[set[tuple[int, int]], int, int, int]:
    """Disconnected pairs plus (sum, count, max) of finite path lengths."""
    disconnected: set[tuple[int, int]] = set()
    total = 0
    count = 0
    worst = 0
    for i, a in enumerate(live):
        row = dist_rows[a]
        for b in live[i + 1 :]:
            d = row[b]
            if d < 0:
                disconnected.add((a, b))
            else:
                total += d
                count += 1
                worst = max(worst, d)
    return disconnected, total, count, worst


def opera_failure_report(
    schedule: OperaSchedule,
    failures: FailureSet,
    slices: Iterable[int] | None = None,
) -> ConnectivityReport:
    """Step through the slices and measure loss/stretch (Figures 11, 18)."""
    live = [r for r in range(schedule.n_racks) if r not in failures.racks]
    n_pairs = len(live) * (len(live) - 1) // 2
    union: set[tuple[int, int]] = set()
    worst_slice = 0
    path_sum = 0
    path_count = 0
    worst_path = 0
    slice_list = (
        list(slices) if slices is not None else range(schedule.cycle_slices)
    )
    for s in slice_list:
        routes = SliceRoutes(build_adjacency(schedule, s, failures))
        disconnected, total, count, worst = _pair_metrics(routes.dist, live)
        union |= disconnected
        worst_slice = max(worst_slice, len(disconnected))
        path_sum += total
        path_count += count
        worst_path = max(worst_path, worst)
    return ConnectivityReport(
        label="opera",
        worst_slice_loss=worst_slice / n_pairs if n_pairs else 0.0,
        any_slice_loss=len(union) / n_pairs if n_pairs else 0.0,
        average_path_length=path_sum / path_count if path_count else float("inf"),
        worst_path_length=worst_path,
    )


def expander_failure_report(
    topology: ExpanderTopology, failures: FailureSet
) -> ConnectivityReport:
    """Loss/stretch for the static expander (Figure 20).

    Expander "links" are its inter-ToR edges; ``failures.links`` pairs are
    interpreted as ``(rack, matching index)``, mirroring Opera's
    ``(rack, switch)`` convention.
    """
    n = topology.n_racks
    adj: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for rack, edges in enumerate(topology.adjacency):
        for peer, port in edges:
            if rack < peer and failures.circuit_ok(rack, peer, port):
                adj[rack].append((peer, port))
                adj[peer].append((rack, port))
    routes = SliceRoutes(adj)
    live = [r for r in range(n) if r not in failures.racks]
    n_pairs = len(live) * (len(live) - 1) // 2
    disconnected, total, count, worst = _pair_metrics(routes.dist, live)
    loss = len(disconnected) / n_pairs if n_pairs else 0.0
    return ConnectivityReport(
        label=f"expander-u{topology.uplinks}",
        worst_slice_loss=loss,
        any_slice_loss=loss,
        average_path_length=total / count if count else float("inf"),
        worst_path_length=worst,
    )


def clos_failure_report(
    clos: FoldedClos,
    failed_links: frozenset[tuple[str, int, int]] = frozenset(),
    failed_switches: frozenset[tuple[str, int]] = frozenset(),
) -> ConnectivityReport:
    """Loss/stretch for the folded Clos (Figure 19).

    Links are ``("ta", tor, agg)`` or ``("ac", agg, core)`` tuples;
    switches are ``("agg", i)`` / ``("core", i)`` (ToRs are endpoints and
    are failed via the expander-style rack set in the sweep harness).
    """
    n_tor = clos.n_racks
    n_agg = clos.n_aggs
    agg_base = n_tor
    core_base = n_tor + n_agg
    n_nodes = core_base + clos.n_cores
    adj: list[list[int]] = [[] for _ in range(n_nodes)]

    def agg_alive(a: int) -> bool:
        return ("agg", a) not in failed_switches

    def core_alive(c: int) -> bool:
        return ("core", c) not in failed_switches

    for tor in range(n_tor):
        for agg in clos.tor_agg_links(tor):
            if agg_alive(agg) and ("ta", tor, agg) not in failed_links:
                adj[tor].append(agg_base + agg)
                adj[agg_base + agg].append(tor)
    for agg in range(n_agg):
        if not agg_alive(agg):
            continue
        for core in clos.agg_core_links(agg):
            if core_alive(core) and ("ac", agg, core) not in failed_links:
                adj[agg_base + agg].append(core_base + core)
                adj[core_base + core].append(agg_base + agg)

    live = list(range(n_tor))
    n_pairs = n_tor * (n_tor - 1) // 2
    dist_rows = []
    for tor in range(n_tor):
        dist = [-1] * n_nodes
        dist[tor] = 0
        queue = deque([tor])
        while queue:
            v = queue.popleft()
            for w in adj[v]:
                if dist[w] == -1:
                    dist[w] = dist[v] + 1
                    queue.append(w)
        dist_rows.append(dist)
    disconnected, total, count, worst = _pair_metrics(dist_rows, live)
    loss = len(disconnected) / n_pairs if n_pairs else 0.0
    return ConnectivityReport(
        label=f"clos-{clos.oversubscription}to1",
        worst_slice_loss=loss,
        any_slice_loss=loss,
        average_path_length=total / count if count else float("inf"),
        worst_path_length=worst,
    )


def random_clos_link_failures(
    clos: FoldedClos, fraction: float, rng: random.Random
) -> frozenset[tuple[str, int, int]]:
    """Fail a uniform fraction of the Clos's inter-switch links."""
    links: list[tuple[str, int, int]] = []
    for tor in range(clos.n_racks):
        links.extend(("ta", tor, agg) for agg in clos.tor_agg_links(tor))
    for agg in range(clos.n_aggs):
        links.extend(("ac", agg, core) for core in clos.agg_core_links(agg))
    k = round(fraction * len(links))
    return frozenset(rng.sample(links, k))


def random_clos_switch_failures(
    clos: FoldedClos, fraction: float, rng: random.Random
) -> frozenset[tuple[str, int]]:
    """Fail a uniform fraction of aggregation+core switches."""
    switches = [("agg", a) for a in range(clos.n_aggs)]
    switches += [("core", c) for c in range(clos.n_cores)]
    k = round(fraction * len(switches))
    return frozenset(rng.sample(switches, k))
