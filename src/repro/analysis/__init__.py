"""Analyses: expansion, path lengths, failures, costs and throughput."""

from .costs import (
    EquivalentNetworks,
    alpha_estimate,
    clos_hosts,
    clos_oversubscription_for_alpha,
    cost_equivalent_networks,
    expander_racks_for_hosts,
    expander_uplinks_for_alpha,
    port_cost,
)
from .expansion import (
    SpectralReport,
    adjacency_matrix,
    expander_spectrum,
    opera_slice_spectra,
    ramanujan_gap,
    spectral_gap,
)
from .failures import (
    PAPER_FAILURE_FRACTIONS,
    ConnectivityReport,
    clos_failure_report,
    expander_failure_report,
    opera_failure_report,
    random_clos_link_failures,
    random_clos_switch_failures,
)
from .paths import (
    PathLengthDistribution,
    clos_path_lengths,
    expander_path_lengths,
    opera_path_lengths,
    sampled_average_path_length,
)
from .throughput import (
    RotorFluidModel,
    clos_throughput,
    expander_link_loads,
    expander_throughput,
    opera_throughput,
)

__all__ = [
    "EquivalentNetworks",
    "alpha_estimate",
    "clos_hosts",
    "clos_oversubscription_for_alpha",
    "cost_equivalent_networks",
    "expander_racks_for_hosts",
    "expander_uplinks_for_alpha",
    "port_cost",
    "SpectralReport",
    "adjacency_matrix",
    "expander_spectrum",
    "opera_slice_spectra",
    "ramanujan_gap",
    "spectral_gap",
    "PAPER_FAILURE_FRACTIONS",
    "ConnectivityReport",
    "clos_failure_report",
    "expander_failure_report",
    "opera_failure_report",
    "random_clos_link_failures",
    "random_clos_switch_failures",
    "PathLengthDistribution",
    "clos_path_lengths",
    "expander_path_lengths",
    "opera_path_lengths",
    "sampled_average_path_length",
    "RotorFluidModel",
    "clos_throughput",
    "expander_link_loads",
    "expander_throughput",
    "opera_throughput",
]
