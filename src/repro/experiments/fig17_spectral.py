"""Figure 17 / Appendix D: spectral gap vs path length.

Each of the reference network's topology slices is one point; static
expanders with u = 5..8 (at matched host count) provide the comparison.
Opera's slices sit near the best static average path length despite the
disjoint-matching constraint.
"""

from __future__ import annotations

from ..analysis.expansion import (
    SpectralReport,
    expander_spectrum,
    opera_slice_spectra,
)
from ..core.schedule import OperaSchedule
from ..topologies.expander import ExpanderTopology
from ..scenarios import scenario

__all__ = ["run", "format_rows"]


@scenario("fig17", tags=("analysis", "graph"), cost="medium",
          title="spectral gaps (Figure 17)")
def run(
    n_racks: int = 108,
    n_switches: int = 6,
    n_hosts: int = 648,
    expander_uplinks: tuple[int, ...] = (5, 6, 7, 8),
    k: int = 12,
    seed: int = 0,
    slice_stride: int = 1,
) -> dict[str, list[SpectralReport]]:
    sched = OperaSchedule(n_racks, n_switches, seed=seed)
    slices = range(0, sched.cycle_slices, slice_stride)
    reports = {"opera": opera_slice_spectra(sched, slices)}
    statics = []
    for u in expander_uplinks:
        d = k - u
        racks = -(-n_hosts // d)
        racks += racks % 2
        statics.append(expander_spectrum(ExpanderTopology(racks, u, d, seed=seed)))
    reports["static"] = statics
    return reports


def format_rows(data: dict[str, list[SpectralReport]]) -> list[str]:
    rows = ["graph                degree  spectral-gap  avg-path  worst-path"]
    opera = data["opera"]
    gaps = sorted(r.spectral_gap for r in opera)
    avg_gap = sum(gaps) / len(gaps)
    avg_path = sum(r.average_path_length for r in opera) / len(opera)
    worst = max(r.worst_path_length for r in opera)
    deg = sum(r.degree for r in opera) / len(opera)
    rows.append(
        f"opera ({len(opera)} slices)  {deg:6.2f} {avg_gap:13.3f} "
        f"{avg_path:9.2f} {worst:11d}"
    )
    for r in data["static"]:
        rows.append(
            f"{r.label:>19s}  {r.degree:6.2f} {r.spectral_gap:13.3f} "
            f"{r.average_path_length:9.2f} {r.worst_path_length:11d}"
        )
    return rows
