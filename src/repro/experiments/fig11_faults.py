"""Figure 11: Opera connectivity loss under component failures.

Random link / ToR / circuit-switch failures are injected into the 108-rack
reference network; we step through the topology slices and report the
fraction of disconnected ToR pairs in the worst slice and across all
slices. The paper finds no loss up to ~4% links, ~7% ToRs, or 2/6 circuit
switches.
"""

from __future__ import annotations

import random

from ..analysis.failures import (
    PAPER_FAILURE_FRACTIONS,
    ConnectivityReport,
    opera_failure_report,
)
from ..core.faults import FailureSet
from ..core.schedule import OperaSchedule
from ..scenarios import scenario

__all__ = ["run", "format_rows"]


@scenario("fig11", tags=("analysis", "faults"), cost="medium",
          title="fault tolerance (Figure 11)")
def run(
    n_racks: int = 108,
    n_switches: int = 6,
    fractions: tuple[float, ...] = PAPER_FAILURE_FRACTIONS,
    seed: int = 0,
    slice_stride: int = 4,
) -> dict[str, list[tuple[float, ConnectivityReport]]]:
    """Failure sweeps for links, ToRs and circuit switches.

    ``slice_stride`` subsamples the 108 slices (stride 4 -> 27 slices) to
    keep the all-pairs BFS budget modest; stride 1 reproduces the full
    figure.
    """
    sched = OperaSchedule(n_racks, n_switches, seed=seed)
    slices = range(0, sched.cycle_slices, slice_stride)
    rng = random.Random(seed)
    out: dict[str, list[tuple[float, ConnectivityReport]]] = {
        "links": [],
        "racks": [],
        "switches": [],
    }
    for fraction in fractions:
        out["links"].append(
            (
                fraction,
                opera_failure_report(
                    sched,
                    FailureSet.random_links(n_racks, n_switches, fraction, rng),
                    slices,
                ),
            )
        )
        out["racks"].append(
            (
                fraction,
                opera_failure_report(
                    sched, FailureSet.random_racks(n_racks, fraction, rng), slices
                ),
            )
        )
        switch_fraction = min(fraction, 1.0)
        out["switches"].append(
            (
                fraction,
                opera_failure_report(
                    sched,
                    FailureSet.random_switches(n_switches, switch_fraction, rng),
                    slices,
                ),
            )
        )
    return out


def format_rows(
    data: dict[str, list[tuple[float, ConnectivityReport]]]
) -> list[str]:
    rows = ["component  fraction  worst-slice loss  across-slices loss"]
    for component, series in data.items():
        for fraction, report in series:
            rows.append(
                f"{component:>9s} {fraction:9.1%} {report.worst_slice_loss:17.4f} "
                f"{report.any_slice_loss:19.4f}"
            )
    return rows
