"""Figure 11: Opera connectivity loss under component failures.

Random link / ToR / circuit-switch failures are injected into the 108-rack
reference network; we step through the topology slices and report the
fraction of disconnected ToR pairs in the worst slice and across all
slices. The paper finds no loss up to ~4% links, ~7% ToRs, or 2/6 circuit
switches.

Shards over the ``(component, fraction)`` grid: every cell draws its
failure set from a hash-derived per-cell seed (instead of one RNG stream
threaded serially through the whole grid), which is what makes the cells
independent — and therefore schedulable and resumable — in the first
place. The schedule itself is seeded with the scenario seed in every cell,
so all cells stress the same topology.
"""

from __future__ import annotations

import random

from ..analysis.failures import (
    PAPER_FAILURE_FRACTIONS,
    ConnectivityReport,
    opera_failure_report,
)
from ..core.faults import FailureSet
from ..core.schedule import OperaSchedule
from ..scenarios import Cell, derive_cell_seed, scenario

__all__ = ["run", "shards", "run_cell", "merge", "format_rows"]

_COMPONENTS = ("links", "racks", "switches")


def shards(
    n_racks: int = 108,
    n_switches: int = 6,
    fractions: tuple[float, ...] = PAPER_FAILURE_FRACTIONS,
    seed: int = 0,
    slice_stride: int = 4,
):
    """Cell plan: one ``(component, fraction)`` failure draw per cell."""
    # All-pairs BFS per sampled slice dominates; n_racks scales both the
    # slice count and the per-slice pair count.
    cost = 25.0 * (n_racks / 108) ** 2 * (4 / max(slice_stride, 1))
    cells = []
    for component in _COMPONENTS:
        for fraction in fractions:
            key = f"{component}@{fraction:g}"
            cells.append(
                Cell(
                    key=key,
                    params={
                        "component": component,
                        "fraction": fraction,
                        "n_racks": n_racks,
                        "n_switches": n_switches,
                        "slice_stride": slice_stride,
                        "sched_seed": seed,
                        "seed": derive_cell_seed(seed, "fig11", key),
                    },
                    cost=cost,
                )
            )
    return cells


def run_cell(
    component: str,
    fraction: float,
    n_racks: int,
    n_switches: int,
    slice_stride: int,
    sched_seed: int,
    seed: int,
) -> tuple[float, ConnectivityReport]:
    """Connectivity report for one component type at one failure fraction."""
    sched = OperaSchedule(n_racks, n_switches, seed=sched_seed)
    slices = range(0, sched.cycle_slices, slice_stride)
    rng = random.Random(seed)
    if component == "links":
        failures = FailureSet.random_links(n_racks, n_switches, fraction, rng)
    elif component == "racks":
        failures = FailureSet.random_racks(n_racks, fraction, rng)
    elif component == "switches":
        failures = FailureSet.random_switches(n_switches, min(fraction, 1.0), rng)
    else:
        raise ValueError(f"unknown component {component!r}")
    return fraction, opera_failure_report(sched, failures, slices)


def merge(
    values: list[tuple[float, ConnectivityReport]],
    fractions: tuple[float, ...] = PAPER_FAILURE_FRACTIONS,
    **_params: object,
) -> dict[str, list[tuple[float, ConnectivityReport]]]:
    """Cell values (plan order: component-major) -> per-component series."""
    out: dict[str, list[tuple[float, ConnectivityReport]]] = {}
    it = iter(values)
    for component in _COMPONENTS:
        out[component] = [next(it) for _ in fractions]
    return out


@scenario("fig11", tags=("analysis", "faults"), cost="medium",
          title="fault tolerance (Figure 11)",
          shards="shards", cell="run_cell", merge="merge")
def run(
    n_racks: int = 108,
    n_switches: int = 6,
    fractions: tuple[float, ...] = PAPER_FAILURE_FRACTIONS,
    seed: int = 0,
    slice_stride: int = 4,
) -> dict[str, list[tuple[float, ConnectivityReport]]]:
    """Failure sweeps for links, ToRs and circuit switches.

    ``slice_stride`` subsamples the 108 slices (stride 4 -> 27 slices) to
    keep the all-pairs BFS budget modest; stride 1 reproduces the full
    figure.
    """
    plan = shards(
        n_racks=n_racks, n_switches=n_switches, fractions=fractions,
        seed=seed, slice_stride=slice_stride,
    )
    return merge([run_cell(**cell.params) for cell in plan], fractions=fractions)


def format_rows(
    data: dict[str, list[tuple[float, ConnectivityReport]]]
) -> list[str]:
    rows = ["component  fraction  worst-slice loss  across-slices loss"]
    for component, series in data.items():
        for fraction, report in series:
            rows.append(
                f"{component:>9s} {fraction:9.1%} {report.worst_slice_loss:17.4f} "
                f"{report.any_slice_loss:19.4f}"
            )
    return rows
