"""Figure 10: total throughput vs Websearch share of a mixed workload.

The Websearch fraction is low-latency load (a fraction of aggregate host
bandwidth, forwarded multi-hop); the rest of the network runs the shuffle.
Opera trades ~2x low-latency capacity for 2-4x bulk capacity; the statics
serve both classes out of the same constrained fabric.
"""

from __future__ import annotations

import random

import numpy as np

from ..analysis.costs import cost_equivalent_networks
from ..analysis.throughput import (
    clos_throughput,
    expander_throughput,
    opera_throughput,
)
from ..topologies.expander import ExpanderTopology
from ..workloads.patterns import all_to_all_matrix
from ..scenarios import scenario

__all__ = ["run", "format_rows", "DEFAULT_WS_LOADS"]

DEFAULT_WS_LOADS = (0.01, 0.025, 0.05, 0.10, 0.20, 0.40)


@scenario("fig10", tags=("fluid", "throughput"), cost="heavy",
          title="mixed-traffic throughput (Figure 10)")
def run(
    k: int = 12,
    n_racks: int = 108,
    ws_loads: tuple[float, ...] = DEFAULT_WS_LOADS,
    seed: int = 0,
) -> dict[str, list[tuple[float, float]]]:
    """Total delivered throughput (per-host normalized) per network.

    For each network: websearch load ``w`` is served first (it is
    latency-sensitive and inelastic); the bulk shuffle then fills whatever
    capacity remains. Total throughput = served websearch + bulk.
    """
    eq = cost_equivalent_networks(k, 1.3, n_racks=n_racks)
    d = eq.opera_hosts_per_rack
    uniform_opera = all_to_all_matrix(n_racks, d)
    expander = ExpanderTopology(
        eq.expander_racks, eq.expander_uplinks, eq.expander_hosts_per_rack, seed=seed
    )
    uniform_exp = all_to_all_matrix(eq.expander_racks, eq.expander_hosts_per_rack)
    theta_exp_uniform = expander_throughput(expander, uniform_exp)
    theta_clos_uniform = clos_throughput(uniform_opera, eq.clos_oversubscription, d)

    out: dict[str, list[tuple[float, float]]] = {
        "opera": [],
        "expander": [],
        "clos": [],
    }
    avg_hops = 3.3
    for w in ws_loads:
        # Opera: websearch rides the expander slices (tax ~ avg path), the
        # shuffle rides direct circuits with what's left.
        ll_capacity = (eq.opera_uplinks - 1) * 0.983 / (avg_hops * d)
        ws_served = min(w, ll_capacity)
        bulk = opera_throughput(
            uniform_opera,
            n_racks,
            eq.opera_uplinks,
            low_latency_load=ws_served,
            hosts_per_rack=d,
        )
        out["opera"].append((w, ws_served + bulk))
        # Statics: both classes share one fabric with max uniform
        # throughput theta; websearch is served first.
        for name, theta in (
            ("expander", theta_exp_uniform),
            ("clos", theta_clos_uniform),
        ):
            ws = min(w, theta)
            out[name].append((w, ws + max(0.0, theta - ws)))
    return out


def format_rows(data: dict[str, list[tuple[float, float]]]) -> list[str]:
    loads = [w for w, _v in data["opera"]]
    rows = ["ws load   " + "  ".join(f"{w:6.1%}" for w in loads)]
    for name, series in data.items():
        rows.append(
            f"{name:>9s} " + "  ".join(f"{v:6.3f}" for _w, v in series)
        )
    return rows
