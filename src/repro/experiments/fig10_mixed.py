"""Figure 10: total throughput vs Websearch share of a mixed workload.

The Websearch fraction is low-latency load (a fraction of aggregate host
bandwidth, forwarded multi-hop); the rest of the network runs the shuffle.
Opera trades ~2x low-latency capacity for 2-4x bulk capacity; the statics
serve both classes out of the same constrained fabric.

Shards over the websearch-load axis: each cell evaluates one ``ws_load``
point for all three networks. The expander topology is seeded with the
*scenario* seed in every cell (the figure compares loads over one fixed
topology draw), so sharding does not change what the figure means.
"""

from __future__ import annotations

from functools import lru_cache

from ..analysis.costs import cost_equivalent_networks
from ..analysis.throughput import (
    clos_throughput,
    expander_throughput,
    opera_throughput,
)
from ..scenarios import Cell, scenario
from ..topologies.expander import ExpanderTopology
from ..workloads.patterns import all_to_all_matrix

__all__ = ["run", "shards", "run_cell", "merge", "format_rows", "DEFAULT_WS_LOADS"]

DEFAULT_WS_LOADS = (0.01, 0.025, 0.05, 0.10, 0.20, 0.40)

_NETWORKS = ("opera", "expander", "clos")


def shards(
    k: int = 12,
    n_racks: int = 108,
    ws_loads: tuple[float, ...] = DEFAULT_WS_LOADS,
    seed: int = 0,
):
    """Cell plan: one websearch-load point per cell."""
    return [
        Cell(
            key=f"ws@{w:g}",
            params={"k": k, "n_racks": n_racks, "ws_load": w, "seed": seed},
            # Fluid/analytic cells are all the same shape; the constant
            # ranks them alongside packet cells and scenario hints.
            cost=25.0 * (n_racks / 108),
        )
        for w in ws_loads
    ]


@lru_cache(maxsize=8)
def _setup(k: int, n_racks: int, seed: int):
    """Load-independent inputs shared by every cell of one fig10 run.

    Dominates a cell's runtime, so it is computed once per (k, n_racks,
    seed) per process — matching what the pre-sharding loop did — instead
    of once per load point.
    """
    eq = cost_equivalent_networks(k, 1.3, n_racks=n_racks)
    d = eq.opera_hosts_per_rack
    uniform_opera = all_to_all_matrix(n_racks, d)
    expander = ExpanderTopology(
        eq.expander_racks, eq.expander_uplinks, eq.expander_hosts_per_rack, seed=seed
    )
    uniform_exp = all_to_all_matrix(eq.expander_racks, eq.expander_hosts_per_rack)
    theta_exp_uniform = expander_throughput(expander, uniform_exp)
    theta_clos_uniform = clos_throughput(uniform_opera, eq.clos_oversubscription, d)
    return eq, d, uniform_opera, theta_exp_uniform, theta_clos_uniform


def run_cell(
    k: int, n_racks: int, ws_load: float, seed: int
) -> dict[str, tuple[float, float]]:
    """Total delivered throughput per network at one websearch load."""
    eq, d, uniform_opera, theta_exp_uniform, theta_clos_uniform = _setup(
        k, n_racks, seed
    )

    w = ws_load
    avg_hops = 3.3
    out: dict[str, tuple[float, float]] = {}
    # Opera: websearch rides the expander slices (tax ~ avg path), the
    # shuffle rides direct circuits with what's left.
    ll_capacity = (eq.opera_uplinks - 1) * 0.983 / (avg_hops * d)
    ws_served = min(w, ll_capacity)
    bulk = opera_throughput(
        uniform_opera,
        n_racks,
        eq.opera_uplinks,
        low_latency_load=ws_served,
        hosts_per_rack=d,
    )
    out["opera"] = (w, ws_served + bulk)
    # Statics: both classes share one fabric with max uniform throughput
    # theta; websearch is served first.
    for name, theta in (
        ("expander", theta_exp_uniform),
        ("clos", theta_clos_uniform),
    ):
        ws = min(w, theta)
        out[name] = (w, ws + max(0.0, theta - ws))
    return out


def merge(
    values: list[dict[str, tuple[float, float]]], **_params: object
) -> dict[str, list[tuple[float, float]]]:
    """Per-load cell dicts (plan order) -> per-network series."""
    out: dict[str, list[tuple[float, float]]] = {n: [] for n in _NETWORKS}
    for point in values:
        for name in _NETWORKS:
            out[name].append(point[name])
    return out


@scenario("fig10", tags=("fluid", "throughput"), cost="heavy",
          title="mixed-traffic throughput (Figure 10)",
          shards="shards", cell="run_cell", merge="merge")
def run(
    k: int = 12,
    n_racks: int = 108,
    ws_loads: tuple[float, ...] = DEFAULT_WS_LOADS,
    seed: int = 0,
) -> dict[str, list[tuple[float, float]]]:
    """Total delivered throughput (per-host normalized) per network.

    For each network: websearch load ``w`` is served first (it is
    latency-sensitive and inelastic); the bulk shuffle then fills whatever
    capacity remains. Total throughput = served websearch + bulk.
    """
    plan = shards(k=k, n_racks=n_racks, ws_loads=ws_loads, seed=seed)
    return merge([run_cell(**cell.params) for cell in plan])


def format_rows(data: dict[str, list[tuple[float, float]]]) -> list[str]:
    loads = [w for w, _v in data["opera"]]
    rows = ["ws load   " + "  ".join(f"{w:6.1%}" for w in loads)]
    for name, series in data.items():
        rows.append(
            f"{name:>9s} " + "  ".join(f"{v:6.3f}" for _w, v in series)
        )
    return rows
