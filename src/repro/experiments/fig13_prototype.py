"""Figure 13: prototype RTTs with and without bulk background traffic.

The paper's hardware prototype emulates 8 ToRs and 4 rotor switches inside
one Tofino and runs a ping-pong application under an all-to-all MPI
shuffle. We reproduce it in the packet simulator on the same 8-ToR, 4-rotor
topology (Figure 5): random-pair 64-byte pings measure application RTT,
first on an idle fabric, then with every host pair running bulk traffic.
Low-latency pings queue behind at most one MTU per serialization point, so
the "with bulk" distribution shifts right by up to ~1.2 us per hop — the
same effect the testbed shows (3 us/hop forwarding there, serialization
here).
"""

from __future__ import annotations

import random

from ..core.topology import OperaNetwork
from ..net import OperaSimNetwork
from ..scenarios import scenario

__all__ = ["run", "format_rows"]

MS = 1_000_000_000


@scenario("fig13", tags=("packet",), cost="medium",
          title="prototype RTTs (Figure 13)")
def run(
    n_pings: int = 100,
    with_bulk_pairs: int = 64,
    bulk_bytes: int = 2_000_000,
    seed: int = 0,
) -> dict[str, list[float]]:
    """RTT samples (us) without and with bulk background."""
    out: dict[str, list[float]] = {}
    for label, with_bulk in (("idle", False), ("with_bulk", True)):
        net = OperaNetwork(k=8, n_racks=8, seed=seed)
        sim = OperaSimNetwork(net)
        rng = random.Random(seed)
        if with_bulk:
            pairs = 0
            hosts = list(range(net.n_hosts))
            while pairs < with_bulk_pairs:
                a, b = rng.sample(hosts, 2)
                if net.host_rack(a) == net.host_rack(b):
                    continue
                sim.start_bulk_flow(a, b, bulk_bytes, start_ps=0)
                pairs += 1
        # Ping-pong: a tiny request, answered by a tiny reply the moment it
        # lands. RTT is the sum of both one-way FCTs. Pings are sequenced
        # one at a time so the reply starts exactly when the request ends.
        rtts: list[float] = []
        interval = 50_000_000  # 50 us between pings
        for i in range(n_pings):
            a, b = rng.sample(range(net.n_hosts), 2)
            if net.host_rack(a) == net.host_rack(b):
                b = (b + net.hosts_per_rack) % net.n_hosts
            t0 = max(sim.sim.now, 500_000 + i * interval)
            req = sim.start_low_latency_flow(a, b, 64, start_ps=t0)
            deadline = t0 + 5 * MS
            while not req.complete and sim.sim.now < deadline:
                sim.run(until_ps=min(deadline, sim.sim.now + 100_000))
            if not req.complete:
                continue
            reply = sim.start_low_latency_flow(b, a, 64, start_ps=sim.sim.now)
            deadline = sim.sim.now + 5 * MS
            while not reply.complete and sim.sim.now < deadline:
                sim.run(until_ps=min(deadline, sim.sim.now + 100_000))
            if reply.complete:
                rtts.append((req.fct_ps + reply.fct_ps) / 1e6)
        out[label] = sorted(rtts)
    return out


def format_rows(data: dict[str, list[float]]) -> list[str]:
    rows = ["condition   n     p10     p50     p90     p99 (RTT us)"]
    for label, rtts in data.items():
        if not rtts:
            rows.append(f"{label:>10s}   0")
            continue
        q = lambda p: rtts[min(len(rtts) - 1, int(p / 100 * len(rtts)))]
        rows.append(
            f"{label:>10s} {len(rtts):3d} {q(10):7.2f} {q(50):7.2f} "
            f"{q(90):7.2f} {q(99):7.2f}"
        )
    return rows
