"""Shared packet-level FCT harness for the Figure 7/9 experiments.

Runs a Poisson flow workload over any of the four simulated networks and
reports flow-completion-time percentiles per flow-size bucket — the y-axis
of Figures 7 and 9. Pure-Python packet simulation cannot reach the paper's
648 hosts x seconds horizons at interactive speed, so the experiments run
at a ``REPRO_SCALE`` profile (:data:`SCALE_PROFILES`): ``default`` is a
cost-comparable 16-rack (64-host) instance of each network with capped
flow sizes — raised from 8 racks when the fast-path engine landed — and
``paper`` is the full 648-host k=12 deployment for when wall-clock time is
available. The *relative* FCT behaviour (who saturates first, where bulk
vs low-latency splits) is what carries over across profiles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import cached_property

from ..core.topology import OperaNetwork
from ..obs.metrics import armed as telemetry_armed
from ..net import (
    ClosSimNetwork,
    ExpanderSimNetwork,
    OperaSimNetwork,
    RotorNetSimNetwork,
    SimNetwork,
)
from ..scenarios.sharding import Cell, calibrate_costs, derive_cell_seed
from ..topologies.expander import ExpanderTopology
from ..topologies.folded_clos import FoldedClos
from ..topologies.rotornet import RotorNetTopology
from ..workloads.arrivals import PoissonArrivals
from ..workloads.distributions import DATAMINING, WEBSEARCH, FlowSizeDistribution

__all__ = [
    "FctResult",
    "build_network",
    "run_fct_experiment",
    "resolve_scale",
    "scheduler_for_scale",
    "fct_shard_cells",
    "fct_cell_cost",
    "adaptive_cell_cost",
    "run_fct_cell",
    "merge_fct_cells",
    "SCALE_PROFILES",
    "SCHEDULER_BY_SCALE",
    "SIZE_BUCKETS",
]

MS = 1_000_000_000

#: Flow-size buckets reported (Figure 7/9's x-axis, coarsened).
SIZE_BUCKETS: list[tuple[int, int]] = [
    (0, 10_000),
    (10_000, 100_000),
    (100_000, 1_000_000),
    (1_000_000, 1 << 62),
]

#: ``REPRO_SCALE`` profiles for the packet-level figures: ``(k, n_racks,
#: duration_factor)``. ``ci`` is a fast smoke configuration, ``default``
#: the regular reduced-scale reproduction (raised from 8 to 16 racks when
#: the fast-path engine landed), ``paper`` the full 648-host, k=12
#: deployment of the paper's evaluation. Select per run with
#: ``--set scale=paper`` or process-wide with ``REPRO_SCALE=paper``.
SCALE_PROFILES: dict[str, tuple[int, int, float]] = {
    "ci": (8, 8, 0.25),
    "default": (8, 16, 1.0),
    "paper": (12, 108, 1.0),
}


def resolve_scale(scale: str) -> tuple[int, int, float]:
    """``scale`` profile name -> ``(k, n_racks, duration_factor)``."""
    try:
        return SCALE_PROFILES[scale]
    except KeyError:
        known = ", ".join(sorted(SCALE_PROFILES))
        raise ValueError(f"unknown scale profile {scale!r}; known: {known}") from None


#: Default event scheduler per scale profile, picked from the pending-depth
#: microbenchmark (``benchmarks/engine_microbench.py --depths``, recorded in
#: ``BENCH_engine.json`` under ``scheduler_depths``): the C heap wins at
#: every depth the profiles reach — including the paper profile's tens of
#: thousands of pending events, where the wheel's constant-factor overhead
#: still outweighs its O(1) insertion. Revisit if the depth bench flips.
SCHEDULER_BY_SCALE: dict[str, str] = {
    "ci": "heap",
    "default": "heap",
    "paper": "heap",
}


def scheduler_for_scale(scale: str) -> str:
    """Scheduler the FCT harness uses at ``scale``.

    An explicit ``REPRO_SCHEDULER`` in the environment always wins (the
    differential scheduler tests and the microbenchmark rely on that);
    otherwise the profile's measured default applies.
    """
    env = os.environ.get("REPRO_SCHEDULER")
    if env:
        return env
    return SCHEDULER_BY_SCALE.get(scale, "heap")


@dataclass
class FctResult:
    network: str
    load: float
    n_flows: int
    completed: int
    #: bucket -> (mean_us, p99_us) over completed flows.
    buckets: dict[tuple[int, int], tuple[float | None, float | None]]

    @cached_property
    def _p99_by_lo(self) -> dict[int, float | None]:
        # Derived lookup, not a dataclass field: stays out of the cache /
        # golden payload encoding (which walks dataclasses.fields only).
        return {a: p99 for (a, _b), (_mean, p99) in self.buckets.items()}

    def bucket_p99(self, lo: int) -> float | None:
        return self._p99_by_lo.get(lo)


def build_network(kind: str, k: int = 8, n_racks: int = 8, seed: int = 0) -> SimNetwork:
    """Instantiate one of the four evaluation networks at small scale.

    ``kind``: ``opera`` | ``expander`` | ``clos`` | ``rotornet`` |
    ``rotornet-hybrid``. The expander gets one extra uplink and the Clos
    3:1 oversubscription, mirroring the paper's cost equivalence.
    """
    if kind == "opera":
        return OperaSimNetwork(OperaNetwork(k=k, n_racks=n_racks, seed=seed))
    if kind == "expander":
        u = k // 2 + 1
        return ExpanderSimNetwork(
            ExpanderTopology(n_racks, u, k - u, seed=seed)
        )
    if kind == "clos":
        oversub = 3 if k % 4 == 0 else 1
        clos = FoldedClos(k, oversub, n_pods=None)
        pods = max(1, min(clos.k, round(n_racks / clos.tors_per_pod)))
        return ClosSimNetwork(FoldedClos(k, oversub, n_pods=pods))
    if kind in ("rotornet", "rotornet-hybrid"):
        return RotorNetSimNetwork(
            RotorNetTopology(
                n_racks,
                k // 2,
                k // 2,
                hybrid=(kind == "rotornet-hybrid"),
                seed=seed,
            )
        )
    raise ValueError(f"unknown network kind {kind!r}")


def run_fct_experiment(
    kind: str,
    distribution: FlowSizeDistribution,
    load: float,
    duration_ms: float = 5.0,
    drain_ms: float = 10.0,
    size_cap: int = 3_000_000,
    k: int = 8,
    n_racks: int = 8,
    seed: int = 0,
    scheduler: str | None = None,
    coalesce: bool | None = None,
) -> FctResult:
    """Poisson flows at ``load`` over network ``kind``; FCTs per bucket.

    ``scheduler`` picks the event scheduler for this run's Simulator and
    ``coalesce`` toggles its event-coalescing fast path (both are
    bit-identical on every flow observable, so these are purely
    wall-clock choices); ``None`` keeps the engine's ambient default, and
    an explicit ``REPRO_SCHEDULER`` / ``REPRO_COALESCE`` in the
    environment always wins (the differential tests rely on that).
    """
    # The Simulator reads both env knobs at construction; scope the
    # overrides to the network build so nothing leaks to other runs.
    overrides: dict[str, str] = {}
    if scheduler is not None and not os.environ.get("REPRO_SCHEDULER"):
        overrides["REPRO_SCHEDULER"] = scheduler
    if coalesce is not None and not os.environ.get("REPRO_COALESCE"):
        overrides["REPRO_COALESCE"] = "1" if coalesce else "0"
    if overrides:
        os.environ.update(overrides)
        try:
            net = build_network(kind, k=k, n_racks=n_racks, seed=seed)
        finally:
            for key in overrides:
                del os.environ[key]
    else:
        net = build_network(kind, k=k, n_racks=n_racks, seed=seed)
    hosts_per_rack = sum(1 for h in net.hosts if h.rack == 0)
    arrivals = PoissonArrivals(
        distribution.truncated(size_cap),
        load=load,
        n_hosts=len(net.hosts),
        hosts_per_rack=hosts_per_rack,
        seed=seed,
    )
    # Opera classifies by the deployment's own threshold; other fabrics
    # carry everything over their single service (plus the hybrid split).
    if kind == "opera":
        threshold = net.network.bulk_threshold_bytes  # type: ignore[attr-defined]
    elif kind == "rotornet-hybrid":
        threshold = 1_000_000
    else:
        threshold = 1 << 62
    for flow in arrivals.flows(duration_ps=int(duration_ms * MS)):
        size = flow.size_bytes
        if size >= threshold:
            net.start_bulk_flow(flow.src_host, flow.dst_host, size, flow.time_ps)
        else:
            net.start_low_latency_flow(
                flow.src_host, flow.dst_host, size, flow.time_ps
            )
    net.run(until_ps=int((duration_ms + drain_ms) * MS))
    buckets: dict[tuple[int, int], tuple[float | None, float | None]] = {}
    for lo, hi in SIZE_BUCKETS:
        buckets[(lo, hi)] = (
            net.stats.mean_fct_us((lo, hi)),
            net.stats.fct_percentile_us(99, (lo, hi)),
        )
    # Telemetry drain: a pure post-run read of counters both kernels
    # maintained during the simulation, after every observable above has
    # been computed — armed runs stay bit-identical to off runs.
    if telemetry_armed():
        from ..obs.metrics import drain_network

        drain_network(net)
    return FctResult(
        network=kind,
        load=load,
        n_flows=len(net.stats.flows),
        completed=len(net.stats.completed_flows()),
        buckets=buckets,
    )


# ------------------------------------------------------------------ sharding

#: Named workloads a cell can reference (cell params must be JSON-able, so
#: distributions travel by name, never as objects).
DISTRIBUTIONS: dict[str, FlowSizeDistribution] = {
    "datamining": DATAMINING,
    "websearch": WEBSEARCH,
}

#: Relative per-network wall-clock weight, measured from the engine
#: microbenchmark's per-network walls at 10% load (``BENCH_engine.json``):
#: the Clos burns ~2.4x opera's time per simulated millisecond, RotorNet
#: without a packet fabric ~0.4x.
NETWORK_COST_WEIGHT: dict[str, float] = {
    "opera": 1.0,
    "expander": 1.2,
    "clos": 2.4,
    "rotornet-hybrid": 1.1,
    "rotornet": 0.4,
}


def fct_cell_cost(scale: str, network: str, load: float, duration_ms: float) -> float:
    """Estimated relative wall-clock of one ``(network, load)`` FCT cell.

    Simulated work grows with the deployment size (hosts), the arrival
    horizon, the offered load, and the per-network weight — so a
    paper-scale 25%-load Clos cell schedules long before a default-scale
    1%-load RotorNet one. Heuristic, not a promise; only the ordering
    matters.
    """
    k, n_racks, duration_factor = resolve_scale(scale)
    hosts = n_racks * (k // 2)
    return (
        NETWORK_COST_WEIGHT.get(network, 1.0)
        * hosts
        * max(load, 0.01)
        * (duration_ms * duration_factor / 4.0)
    )


def adaptive_cell_cost(
    scale: str,
    network: str,
    load: float,
    duration_ms: float,
    history: "dict[str, float] | None" = None,
) -> float:
    """Cost of one FCT cell, adapted from recorded durations when present.

    ``history`` maps cell keys (``f"{network}@{load:g}"``, the keys
    :func:`fct_shard_cells` mints and every cell-cache document records)
    to mean measured wall seconds — typically
    ``ResultCache.cell_durations("fig07")``. When this cell has history,
    its recorded duration is calibrated into static-estimate units via
    :func:`~repro.scenarios.sharding.calibrate_costs` (fitting the
    seconds-per-unit ratio over every history key, so adapted and
    static-only cells stay comparable); with no usable history the static
    scale x network x load estimate is returned unchanged.

    This is the per-cell convenience for library users of the FCT
    harness; at run time the Runner applies the identical
    ``calibrate_costs`` blend to *whole unit batches* itself
    (``Runner._adapt_costs``), scenario-agnostically, without going
    through this function.
    """
    key = f"{network}@{load:g}"
    static = {key: fct_cell_cost(scale, network, load, duration_ms)}
    if not history:
        return static[key]
    for other_key, seconds in history.items():
        if other_key == key or not isinstance(seconds, (int, float)):
            continue
        net, sep, load_text = other_key.partition("@")
        if not sep:
            continue
        try:
            other_load = float(load_text)
        except ValueError:
            continue
        static[other_key] = fct_cell_cost(scale, net, other_load, duration_ms)
    return calibrate_costs(static, dict(history))[key]


def fct_shard_cells(
    scenario_name: str,
    distribution: str,
    networks: tuple[str, ...],
    loads: tuple[float, ...],
    duration_ms: float,
    seed: int,
    scale: str,
) -> list[Cell]:
    """Shard an FCT grid scenario over its ``(network, load)`` axes.

    Every cell gets a hash-derived seed from ``(seed, scenario, cell key)``
    — identical whether the cell later runs sharded, pooled, or inside the
    scenario's own unsharded ``run()`` loop — and a cost estimate so the
    pool schedules long cells first.
    """
    cells = []
    for kind in networks:
        for load in loads:
            key = f"{kind}@{load:g}"
            cells.append(
                Cell(
                    key=key,
                    params={
                        "network": kind,
                        "load": load,
                        "distribution": distribution,
                        "duration_ms": duration_ms,
                        "seed": derive_cell_seed(seed, scenario_name, key),
                        "scale": scale,
                    },
                    cost=fct_cell_cost(scale, kind, load, duration_ms),
                )
            )
    return cells


def run_fct_cell(
    network: str,
    load: float,
    distribution: str,
    duration_ms: float,
    seed: int,
    scale: str,
) -> FctResult:
    """One independent ``(network, load)`` point of an FCT grid."""
    k, n_racks, duration_factor = resolve_scale(scale)
    return run_fct_experiment(
        network,
        DISTRIBUTIONS[distribution],
        load,
        duration_ms=duration_ms * duration_factor,
        k=k,
        n_racks=n_racks,
        seed=seed,
        scheduler=scheduler_for_scale(scale),
    )


def merge_fct_cells(values: list[FctResult], **_params: object) -> list[FctResult]:
    """Cell values in plan order are exactly the grid's result list."""
    return list(values)


def format_rows(results: list[FctResult]) -> list[str]:
    rows = [
        "network            load  flows done | p99 FCT (us) per size bucket"
    ]
    for r in results:
        cells = []
        for (lo, _hi), (_mean, p99) in r.buckets.items():
            label = f"{lo // 1000}KB+" if lo else "<10KB"
            cells.append(f"{label}:{p99:.0f}" if p99 is not None else f"{label}:-")
        rows.append(
            f"{r.network:>17s} {r.load:5.0%} {r.n_flows:6d} {r.completed:5d} | "
            + "  ".join(cells)
        )
    return rows
