"""Table 1: Opera ruleset sizes and Tofino utilization vs datacenter size."""

from __future__ import annotations

from ..core.state import RuleSetSize, table1_rows
from ..scenarios import scenario

__all__ = ["run", "format_rows"]


@scenario("table1", tags=("analysis", "state"), cost="cheap",
          title="routing state (Table 1)")
def run() -> list[RuleSetSize]:
    return table1_rows()


def format_rows(rows: list[RuleSetSize]) -> list[str]:
    out = ["#Racks   #Entries   %Utilization"]
    for r in rows:
        out.append(f"{r.n_racks:6d} {r.entries:10,d} {100 * r.utilization:13.1f}")
    return out
