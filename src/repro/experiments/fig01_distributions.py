"""Figure 1: flow-size and byte CDFs of the three published workloads."""

from __future__ import annotations

from ..workloads.distributions import ALL_WORKLOADS
from ..scenarios import scenario

#: Sizes at which the paper's Figure 1 x-axis is sampled.
SAMPLE_SIZES = [10**e for e in range(2, 10)]


@scenario("fig01", tags=("analysis", "workloads"), cost="cheap",
          title="flow-size distributions (Figure 1)")
def run() -> dict[str, dict[str, list[float]]]:
    """CDF-of-flows (top panel) and CDF-of-bytes (bottom) per workload."""
    out: dict[str, dict[str, list[float]]] = {}
    for name, dist in ALL_WORKLOADS.items():
        out[name] = {
            "sizes": [float(s) for s in SAMPLE_SIZES],
            "flow_cdf": [dist.cdf(s) for s in SAMPLE_SIZES],
            "byte_cdf": [dist.byte_cdf(s) for s in SAMPLE_SIZES],
            "mean_bytes": [dist.mean_bytes()],
            "bulk_byte_fraction_15MB": [dist.bulk_byte_fraction(15e6)],
        }
    return out


def format_rows(data: dict[str, dict[str, list[float]]]) -> list[str]:
    rows = ["size_bytes " + " ".join(f"{s:>9.0e}" for s in SAMPLE_SIZES)]
    for name, series in data.items():
        rows.append(
            f"{name:>10s}/flows " + " ".join(f"{v:9.3f}" for v in series["flow_cdf"])
        )
        rows.append(
            f"{name:>10s}/bytes " + " ".join(f"{v:9.3f}" for v in series["byte_cdf"])
        )
    return rows
