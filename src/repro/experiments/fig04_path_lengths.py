"""Figure 4: path-length CDFs of the cost-equivalent 648-host trio."""

from __future__ import annotations

from ..analysis.costs import cost_equivalent_networks
from ..analysis.paths import (
    PathLengthDistribution,
    clos_path_lengths,
    expander_path_lengths,
    opera_path_lengths,
)
from ..core.schedule import OperaSchedule
from ..topologies.expander import ExpanderTopology
from ..topologies.folded_clos import FoldedClos
from ..scenarios import scenario


@scenario("fig04", tags=("analysis", "graph"), cost="medium",
          title="path-length CDFs (Figure 4)", defaults={"n_slices": 27})
def run(
    k: int = 12, n_racks: int | None = None, seed: int = 0, n_slices: int | None = None
) -> dict[str, PathLengthDistribution]:
    """Path CDFs for Opera, the u=7 expander and the 3:1 folded Clos.

    Defaults reproduce the full 648-host comparison; ``n_slices`` can
    subsample Opera's 108 slices for quicker runs.
    """
    eq = cost_equivalent_networks(k, 1.3, n_racks=n_racks)
    sched = OperaSchedule(eq.opera_racks, eq.opera_uplinks, seed=seed)
    slices = None if n_slices is None else range(0, sched.cycle_slices, max(1, sched.cycle_slices // n_slices))
    expander = ExpanderTopology(
        eq.expander_racks, eq.expander_uplinks, eq.expander_hosts_per_rack, seed=seed
    )
    clos = FoldedClos(k, max(1, round(eq.clos_oversubscription)))
    return {
        "opera": opera_path_lengths(sched, slices),
        "expander": expander_path_lengths(expander),
        "clos": clos_path_lengths(clos),
    }


def format_rows(data: dict[str, PathLengthDistribution]) -> list[str]:
    rows = ["network    hops:cdf ..."]
    for name, dist in data.items():
        cdf = " ".join(f"{h}:{v:.3f}" for h, v in dist.cdf())
        rows.append(
            f"{name:>9s} avg={dist.average():.2f} worst={dist.worst()} | {cdf}"
        )
    return rows
