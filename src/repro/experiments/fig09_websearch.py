"""Figure 9: Websearch FCTs — Opera's worst case (all traffic indirect).

Every Websearch flow sits below the 15 MB bulk threshold, so Opera pays the
multi-hop bandwidth tax on all of it and only admits ~10% load; the static
networks saturate somewhat above 25%. Reproduced at reduced scale.
"""

from __future__ import annotations

from ..workloads.distributions import WEBSEARCH
from ..scenarios import scenario
from .fctsim import FctResult, format_rows, resolve_scale, run_fct_experiment

__all__ = ["run", "format_rows", "DEFAULT_LOADS", "DEFAULT_NETWORKS"]

DEFAULT_LOADS = (0.01, 0.05, 0.10)
DEFAULT_NETWORKS = ("opera", "expander", "clos")


@scenario("fig09", tags=("packet", "fct"), cost="heavy",
          title="Websearch FCTs, reduced scale (Figure 9)")
def run(
    loads: tuple[float, ...] = DEFAULT_LOADS,
    networks: tuple[str, ...] = DEFAULT_NETWORKS,
    duration_ms: float = 4.0,
    seed: int = 0,
    scale: str = "default",
) -> list[FctResult]:
    """Websearch FCTs per load/network at a ``REPRO_SCALE`` profile."""
    k, n_racks, duration_factor = resolve_scale(scale)
    results = []
    for kind in networks:
        for load in loads:
            results.append(
                run_fct_experiment(
                    kind,
                    WEBSEARCH,
                    load,
                    duration_ms=duration_ms * duration_factor,
                    k=k,
                    n_racks=n_racks,
                    seed=seed,
                )
            )
    return results
