"""Figure 9: Websearch FCTs — Opera's worst case (all traffic indirect).

Every Websearch flow sits below the 15 MB bulk threshold, so Opera pays the
multi-hop bandwidth tax on all of it and only admits ~10% load; the static
networks saturate somewhat above 25%. Reproduced at reduced scale.

Shards over the ``(network, load)`` grid exactly like fig07 (see that
module for the sharding contract).
"""

from __future__ import annotations

from ..scenarios import scenario
from .fctsim import (
    FctResult,
    fct_shard_cells,
    format_rows,
    merge_fct_cells,
    run_fct_cell,
)

__all__ = ["run", "shards", "run_cell", "merge", "format_rows",
           "DEFAULT_LOADS", "DEFAULT_NETWORKS"]

DEFAULT_LOADS = (0.01, 0.05, 0.10)
DEFAULT_NETWORKS = ("opera", "expander", "clos")


def shards(
    loads: tuple[float, ...] = DEFAULT_LOADS,
    networks: tuple[str, ...] = DEFAULT_NETWORKS,
    duration_ms: float = 4.0,
    seed: int = 0,
    scale: str = "default",
):
    """Cell plan: one ``(network, load)`` point per cell."""
    return fct_shard_cells(
        "fig09", "websearch", networks, loads, duration_ms, seed, scale
    )


run_cell = run_fct_cell
merge = merge_fct_cells


@scenario("fig09", tags=("packet", "fct"), cost="heavy",
          title="Websearch FCTs, reduced scale (Figure 9)",
          shards="shards", cell="run_cell", merge="merge",
          aliases=("fig09_websearch",))
def run(
    loads: tuple[float, ...] = DEFAULT_LOADS,
    networks: tuple[str, ...] = DEFAULT_NETWORKS,
    duration_ms: float = 4.0,
    seed: int = 0,
    scale: str = "default",
) -> list[FctResult]:
    """Websearch FCTs per load/network at a ``REPRO_SCALE`` profile."""
    plan = shards(
        loads=loads, networks=networks, duration_ms=duration_ms,
        seed=seed, scale=scale,
    )
    return merge([run_cell(**cell.params) for cell in plan])
