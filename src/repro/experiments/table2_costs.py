"""Table 2: per-port cost of a static network vs Opera, and alpha."""

from __future__ import annotations

from ..analysis.costs import (
    OPERA_PORT_COSTS,
    STATIC_PORT_COSTS,
    alpha_estimate,
    cost_equivalent_networks,
    port_cost,
)
from ..scenarios import scenario

__all__ = ["run", "format_rows"]


@scenario("table2", tags=("analysis", "costs"), cost="cheap",
          title="port costs (Table 2)")
def run() -> dict[str, float]:
    eq = cost_equivalent_networks(12, 1.3)
    return {
        "static_port_usd": port_cost(STATIC_PORT_COSTS),
        "opera_port_usd": port_cost(OPERA_PORT_COSTS),
        "alpha": alpha_estimate(),
        "trio_hosts": float(eq.n_hosts),
        "trio_expander_uplinks": float(eq.expander_uplinks),
        "trio_expander_racks": float(eq.expander_racks),
        "trio_clos_oversubscription": eq.clos_oversubscription,
    }


def format_rows(data: dict[str, float]) -> list[str]:
    rows = ["component costs (Table 2):"]
    for name, cost in OPERA_PORT_COSTS.items():
        marker = "" if name in STATIC_PORT_COSTS else "  (rotor only)"
        rows.append(f"  {name:>24s} ${cost:6.0f}{marker}")
    for key, value in data.items():
        rows.append(f"{key:>28s} = {value:.3f}")
    return rows
