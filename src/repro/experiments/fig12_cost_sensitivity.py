"""Figures 12 and 15: throughput vs relative Opera port cost (alpha).

For each alpha in [1, 2] the static networks are re-sized to equal cost
(Appendix A) and evaluated on the hotrack / skew[0.2,1] / permutation /
all-to-all patterns. Figure 12 is k=24 (5,184 hosts); Figure 15 is k=12
(the paper finds nearly identical scaling, reproduced by running this with
``k=12``).
"""

from __future__ import annotations

import random

import numpy as np

from ..analysis.costs import cost_equivalent_networks
from ..analysis.throughput import (
    clos_throughput,
    expander_throughput,
    opera_throughput,
)
from ..topologies.expander import ExpanderTopology
from ..workloads.patterns import (
    all_to_all_matrix,
    hot_rack_matrix,
    permutation_matrix,
    skew_matrix,
)
from ..scenarios import scenario

__all__ = ["run", "format_rows", "DEFAULT_ALPHAS", "PATTERNS"]

DEFAULT_ALPHAS = (1.0, 1.25, 1.5, 1.75, 2.0)
PATTERNS = ("hotrack", "skew", "permutation", "all_to_all")


def _pattern_matrix(pattern: str, n_racks: int, d: int, rng: random.Random):
    if pattern == "hotrack":
        a, b = rng.sample(range(n_racks), 2)
        return hot_rack_matrix(n_racks, d, a, b)
    if pattern == "skew":
        return skew_matrix(n_racks, d, 0.2, rng)
    if pattern == "permutation":
        return permutation_matrix(n_racks, d, rng)
    if pattern == "all_to_all":
        return all_to_all_matrix(n_racks, d)
    raise ValueError(f"unknown pattern {pattern!r}")


@scenario("fig12", tags=("analysis", "costs"), cost="cheap",
          title="cost sensitivity (Figures 12/15)", defaults={"k": 12})
def run(
    k: int = 24,
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    patterns: tuple[str, ...] = PATTERNS,
    hotrack_trials: int = 5,
    seed: int = 0,
) -> dict[str, dict[str, list[tuple[float, float]]]]:
    """``pattern -> network -> [(alpha, throughput)]`` panels."""
    out: dict[str, dict[str, list[tuple[float, float]]]] = {
        p: {"opera": [], "expander": [], "clos": []} for p in patterns
    }
    for alpha in alphas:
        eq = cost_equivalent_networks(k, alpha)
        d = eq.opera_hosts_per_rack
        expander = ExpanderTopology(
            eq.expander_racks,
            eq.expander_uplinks,
            eq.expander_hosts_per_rack,
            seed=seed,
        )
        for pattern in patterns:
            rng = random.Random(seed + 1)
            trials = hotrack_trials if pattern == "hotrack" else 1
            opera_vals, exp_vals, clos_vals = [], [], []
            for _trial in range(trials):
                demand_opera = _pattern_matrix(pattern, eq.opera_racks, d, rng)
                demand_exp = _pattern_matrix(
                    pattern, eq.expander_racks, eq.expander_hosts_per_rack, rng
                )
                opera_vals.append(
                    opera_throughput(
                        demand_opera, eq.opera_racks, eq.opera_uplinks,
                        hosts_per_rack=d,
                    )
                )
                exp_vals.append(expander_throughput(expander, demand_exp))
                clos_vals.append(
                    clos_throughput(demand_opera, eq.clos_oversubscription, d)
                )
            out[pattern]["opera"].append((alpha, float(np.mean(opera_vals))))
            out[pattern]["expander"].append((alpha, float(np.mean(exp_vals))))
            out[pattern]["clos"].append((alpha, float(np.mean(clos_vals))))
    return out


def format_rows(
    data: dict[str, dict[str, list[tuple[float, float]]]]
) -> list[str]:
    rows = []
    for pattern, networks in data.items():
        alphas = [a for a, _v in networks["opera"]]
        rows.append(
            f"[{pattern}] alpha:   " + "  ".join(f"{a:5.2f}" for a in alphas)
        )
        for name, series in networks.items():
            rows.append(
                f"  {name:>9s}      " + "  ".join(f"{v:5.3f}" for _a, v in series)
            )
    return rows
