"""One module per paper table/figure: the reproduction harness.

Each ``figXX_*`` module exposes a ``run(...)`` function returning plain
data (rows/series) plus a ``format_rows`` helper; the ``benchmarks/``
directory wraps them in pytest-benchmark targets that print the same
rows/series the paper reports, and ``EXPERIMENTS.md`` records
paper-vs-measured values.

Scale knobs: packet-level experiments default to reduced scale (Python is
~10^3x slower than htsim); set ``REPRO_SCALE=paper`` in the environment to
run closer to paper scale where feasible.
"""

from . import (
    ablations,
    fig01_distributions,
    fig04_path_lengths,
    fig06_timing,
    fig07_datamining,
    fig08_shuffle,
    fig09_websearch,
    fig10_mixed,
    fig11_dynamic,
    fig11_faults,
    fig12_cost_sensitivity,
    fig13_prototype,
    fig14_cycle_scaling,
    fig16_path_scaling,
    fig17_spectral,
    fig18_failure_paths,
    table1_state,
    table2_costs,
)

__all__ = [
    "ablations",
    "fig01_distributions",
    "fig04_path_lengths",
    "fig06_timing",
    "fig07_datamining",
    "fig08_shuffle",
    "fig09_websearch",
    "fig10_mixed",
    "fig11_dynamic",
    "fig11_faults",
    "fig12_cost_sensitivity",
    "fig13_prototype",
    "fig14_cycle_scaling",
    "fig16_path_scaling",
    "fig17_spectral",
    "fig18_failure_paths",
    "table1_state",
    "table2_costs",
]
