"""Figures 18-20 / Appendix E: path stretch and loss under failures.

Figure 18: Opera's average/worst path lengths as links, ToRs and circuit
switches fail. Figures 19-20: the same sweeps for the 3:1 folded Clos
(links, agg/core switches) and the u=7 expander (links, ToRs) — the Clos
is more fragile than Opera, the bigger-fanout expander less.
"""

from __future__ import annotations

import random

from ..analysis.failures import (
    PAPER_FAILURE_FRACTIONS,
    ConnectivityReport,
    clos_failure_report,
    expander_failure_report,
    opera_failure_report,
    random_clos_link_failures,
    random_clos_switch_failures,
)
from ..core.faults import FailureSet
from ..core.schedule import OperaSchedule
from ..scenarios import scenario
from ..topologies.expander import ExpanderTopology
from ..topologies.folded_clos import FoldedClos

__all__ = ["run", "run_opera", "run_clos", "run_expander", "format_rows", "format_networks"]

Sweep = list[tuple[float, ConnectivityReport]]


@scenario("fig18", tags=("analysis", "faults"), cost="medium",
          title="failure path stretch (Figures 18-20)", formatter="format_networks")
def run(
    n_racks: int = 108,
    n_switches: int = 6,
    fractions: tuple[float, ...] = PAPER_FAILURE_FRACTIONS,
    seed: int = 0,
    slice_stride: int = 8,
) -> dict[str, dict[str, Sweep]]:
    """Uniform entry: all three networks' failure sweeps (Figures 18-20).

    The Clos and expander shapes stay at their paper defaults (they are
    cost-equivalent to the Opera instance only at the defaults anyway);
    ``fractions`` and ``seed`` apply to all three.
    """
    return {
        "opera": run_opera(
            n_racks=n_racks,
            n_switches=n_switches,
            fractions=fractions,
            seed=seed,
            slice_stride=slice_stride,
        ),
        "clos": run_clos(fractions=fractions, seed=seed),
        "expander": run_expander(fractions=fractions, seed=seed),
    }


def run_opera(
    n_racks: int = 108,
    n_switches: int = 6,
    fractions: tuple[float, ...] = PAPER_FAILURE_FRACTIONS,
    seed: int = 0,
    slice_stride: int = 8,
) -> dict[str, Sweep]:
    """Figure 18: Opera path stretch under failures."""
    sched = OperaSchedule(n_racks, n_switches, seed=seed)
    slices = range(0, sched.cycle_slices, slice_stride)
    rng = random.Random(seed)
    out: dict[str, Sweep] = {"links": [], "racks": [], "switches": []}
    for f in fractions:
        out["links"].append(
            (f, opera_failure_report(
                sched, FailureSet.random_links(n_racks, n_switches, f, rng), slices
            ))
        )
        out["racks"].append(
            (f, opera_failure_report(
                sched, FailureSet.random_racks(n_racks, f, rng), slices
            ))
        )
        out["switches"].append(
            (f, opera_failure_report(
                sched, FailureSet.random_switches(n_switches, min(f, 1.0), rng), slices
            ))
        )
    return out


def run_clos(
    k: int = 12,
    oversubscription: int = 3,
    fractions: tuple[float, ...] = PAPER_FAILURE_FRACTIONS,
    seed: int = 0,
) -> dict[str, Sweep]:
    """Figure 19: folded Clos link and switch failures."""
    clos = FoldedClos(k, oversubscription)
    rng = random.Random(seed)
    out: dict[str, Sweep] = {"links": [], "switches": []}
    for f in fractions:
        out["links"].append(
            (f, clos_failure_report(
                clos, failed_links=random_clos_link_failures(clos, f, rng)
            ))
        )
        out["switches"].append(
            (f, clos_failure_report(
                clos, failed_switches=random_clos_switch_failures(clos, f, rng)
            ))
        )
    return out


def run_expander(
    n_racks: int = 130,
    uplinks: int = 7,
    hosts_per_rack: int = 5,
    fractions: tuple[float, ...] = PAPER_FAILURE_FRACTIONS,
    seed: int = 0,
) -> dict[str, Sweep]:
    """Figure 20: u=7 expander link and ToR failures."""
    topo = ExpanderTopology(n_racks, uplinks, hosts_per_rack, seed=seed)
    rng = random.Random(seed)
    out: dict[str, Sweep] = {"links": [], "racks": []}
    for f in fractions:
        out["links"].append(
            (f, expander_failure_report(
                topo, FailureSet.random_links(n_racks, uplinks, f, rng)
            ))
        )
        out["racks"].append(
            (f, expander_failure_report(
                topo, FailureSet.random_racks(n_racks, f, rng)
            ))
        )
    return out


def format_rows(data: dict[str, Sweep], label: str = "") -> list[str]:
    rows = [f"{label} component  fraction     loss   avg-path   worst-path"]
    for component, series in data.items():
        for fraction, report in series:
            avg = report.average_path_length
            rows.append(
                f"{component:>10s} {fraction:9.1%} {report.any_slice_loss:8.4f} "
                f"{avg:10.2f} {report.worst_path_length:11d}"
            )
    return rows


def format_networks(data: dict[str, dict[str, Sweep]]) -> list[str]:
    rows: list[str] = []
    for network, sweeps in data.items():
        rows += format_rows(sweeps, network)
    return rows
