"""Design-choice ablations, registered as first-class scenarios.

The three ablations the paper's design rests on — reconfiguration-group
size (Appendix B), synchronization guard bands (section 3.5) and RotorLB's
two-hop VLB (section 4.2.2) — used to live only as bespoke benchmark
helpers. Registering them with the scenario registry gives them the CLI,
the result cache, sweeps and the shared benchmark harness for free:

    python -m repro.cli run --tag ablation
    python -m repro.cli sweep ablation_grouping --set groups=12,6,4,3

``benchmarks/bench_ablation_*.py`` wrap these entry points through
``run_scenario()`` exactly like the figure benches do.

Each ablation shards over its variant axis (group size, guard time, VLB
on/off x fidelity): the variants are independent by construction — they
share only deterministic, scenario-seeded inputs — so they fan out across
the Runner's worker pool and resume from the per-cell cache like the FCT
grids do.
"""

from __future__ import annotations

import numpy as np

from ..core.routing import OperaRouting
from ..core.schedule import OperaSchedule
from ..core.timing import PS_PER_US, TimingParams
from ..fluid import RotorFluidSimulation
from ..net import OperaSimNetwork
from ..core.topology import OperaNetwork
from ..scenarios import Cell, scenario

__all__ = [
    "run_grouping",
    "run_guard_bands",
    "run_vlb",
    "format_grouping",
    "format_guard_bands",
    "format_vlb",
]

MS = 1_000_000_000


# ---------------------------------------------------------------- grouping


def shards_grouping(
    n_racks: int = 48,
    n_switches: int = 12,
    groups: tuple[int, ...] = (12, 6, 4, 3),
    seed: int = 0,
):
    """Cell plan: one reconfiguration-group size per cell."""
    return [
        Cell(
            key=f"group@{group}",
            params={
                "group": group,
                "n_racks": n_racks,
                "n_switches": n_switches,
                "seed": seed,
            },
            # Smaller groups stretch the cycle (more slices to walk when
            # histogramming paths), so they cost more.
            cost=float(max(n_switches // max(group, 1), 1)),
        )
        for group in groups
    ]


def run_grouping_cell(group: int, n_racks: int, n_switches: int, seed: int) -> dict:
    """Cycle/threshold/path metrics for one group size."""
    sched = OperaSchedule(n_racks, n_switches, group_size=group, seed=seed)
    timing = TimingParams(
        n_racks=n_racks, n_switches=n_switches, group_size=group
    )
    routing = OperaRouting(sched)
    hist = routing.path_length_histogram()
    total = sum(hist.values())
    avg = sum(h * c for h, c in hist.items()) / total
    return {
        "group": group,
        "down_per_slice": n_switches // group,
        "cycle_slices": sched.cycle_slices,
        "cycle_ms": timing.cycle_ps / 1e9,
        "threshold_MB": timing.bulk_threshold_bytes / 1e6,
        "avg_path": avg,
    }


def merge_grouping(values: list[dict], **_params: object) -> list[dict]:
    return list(values)


@scenario(
    "ablation_grouping",
    tags=("analysis", "ablation"),
    cost="cheap",
    title="Ablation: reconfiguration group size (Appendix B)",
    formatter="format_grouping",
    shards="shards_grouping", cell="run_grouping_cell", merge="merge_grouping",
)
def run_grouping(
    n_racks: int = 48,
    n_switches: int = 12,
    groups: tuple[int, ...] = (12, 6, 4, 3),
    seed: int = 0,
) -> list[dict]:
    """Cycle time / threshold / path-length trade-off vs group size.

    Larger groups shorten the cycle (lower bulk waiting, smaller
    amortization threshold) but take more switches down per slice (less
    instantaneous expander capacity and direct supply).
    """
    plan = shards_grouping(
        n_racks=n_racks, n_switches=n_switches, groups=groups, seed=seed
    )
    return merge_grouping([run_grouping_cell(**cell.params) for cell in plan])


def format_grouping(rows: list[dict]) -> list[str]:
    return [
        f"group {r['group']:2d} ({r['down_per_slice']} down/slice): "
        f"cycle {r['cycle_slices']:3d} slices = {r['cycle_ms']:5.2f} ms, "
        f"threshold {r['threshold_MB']:4.1f} MB, avg path {r['avg_path']:.2f}"
        for r in rows
    ]


# ------------------------------------------------------------- guard bands


def shards_guard_bands(
    guards_us: tuple[int, ...] = (0, 1, 2, 5, 10),
    n_racks: int = 24,
    n_switches: int = 6,
    shuffle_bytes: int = 100_000,
    max_slices: int = 6000,
    seed: int = 0,
):
    """Cell plan: one guard time per cell."""
    return [
        Cell(
            key=f"guard@{guard_us}us",
            params={
                "guard_us": guard_us,
                "n_racks": n_racks,
                "n_switches": n_switches,
                "shuffle_bytes": shuffle_bytes,
                "max_slices": max_slices,
                "seed": seed,
            },
            cost=25.0 * (max_slices / 6000) * (n_racks / 24) ** 2,
        )
        for guard_us in guards_us
    ]


def run_guard_bands_cell(
    guard_us: int,
    n_racks: int,
    n_switches: int,
    shuffle_bytes: int,
    max_slices: int,
    seed: int,
) -> dict:
    """Capacity factors and measured shuffle throughput at one guard time."""
    # Capacity factors use the same geometry as the measured fluid sim
    # (they depend on slice/holding time, i.e. on n_switches only).
    timing = TimingParams(
        n_racks=n_racks, n_switches=n_switches, guard_ps=guard_us * PS_PER_US
    )
    sched = OperaSchedule(n_racks, n_switches, seed=seed)
    fluid_timing = TimingParams(n_racks=n_racks, n_switches=n_switches)
    sim = RotorFluidSimulation(
        sched,
        TimingParams(
            n_racks=n_racks,
            n_switches=n_switches,
            reconfiguration_ps=fluid_timing.reconfiguration_ps
            + 2 * guard_us * PS_PER_US,
        ),
        hosts_per_rack=n_switches,
    )
    sim.add_all_to_all(shuffle_bytes)
    res = sim.run(max_slices=max_slices)
    mid = [v for _t, v in res.throughput_series[: res.slices_run // 2]]
    return {
        "guard_us": guard_us,
        "ll_factor": timing.low_latency_capacity_factor,
        "bulk_factor": timing.bulk_capacity_factor,
        "shuffle_throughput": sum(mid) / len(mid),
    }


def merge_guard_bands(values: list[dict], **_params: object) -> list[dict]:
    return list(values)


@scenario(
    "ablation_guard_bands",
    tags=("fluid", "ablation"),
    cost="medium",
    title="Ablation: synchronization guard bands (section 3.5)",
    formatter="format_guard_bands",
    shards="shards_guard_bands", cell="run_guard_bands_cell",
    merge="merge_guard_bands",
)
def run_guard_bands(
    guards_us: tuple[int, ...] = (0, 1, 2, 5, 10),
    n_racks: int = 24,
    n_switches: int = 6,
    shuffle_bytes: int = 100_000,
    max_slices: int = 6000,
    seed: int = 0,
) -> list[dict]:
    """Capacity factors and measured shuffle throughput vs guard time.

    The paper: "each us of guard time contributes a 1% relative reduction
    in low-latency capacity and a 0.2% reduction for bulk traffic".
    """
    plan = shards_guard_bands(
        guards_us=guards_us, n_racks=n_racks, n_switches=n_switches,
        shuffle_bytes=shuffle_bytes, max_slices=max_slices, seed=seed,
    )
    return merge_guard_bands([run_guard_bands_cell(**cell.params) for cell in plan])


def format_guard_bands(rows: list[dict]) -> list[str]:
    return [
        f"guard {r['guard_us']:2d} us: low-latency x{r['ll_factor']:.3f}  "
        f"bulk x{r['bulk_factor']:.4f}  shuffle thr {r['shuffle_throughput']:.3f}"
        for r in rows
    ]


# -------------------------------------------------------------------- VLB

#: Cell order for the VLB ablation: fidelity-major, VLB-on first —
#: matching the result dict the unsharded loop always produced.
_VLB_VARIANTS = (
    ("fluid", True),
    ("fluid", False),
    ("packet", True),
    ("packet", False),
)


def shards_vlb(
    fluid_racks: int = 108,
    fluid_demand_bytes: float = 30e6,
    packet_flow_bytes: int = 2_000_000,
    seed: int = 0,
):
    """Cell plan: one (fidelity, VLB on/off) variant per cell."""
    return [
        Cell(
            key=f"{level}_vlb={vlb}",
            params={
                "level": level,
                "vlb": vlb,
                "fluid_racks": fluid_racks,
                "fluid_demand_bytes": fluid_demand_bytes,
                "packet_flow_bytes": packet_flow_bytes,
                "seed": seed,
            },
            cost=400.0 if level == "packet" else 100.0,
        )
        for level, vlb in _VLB_VARIANTS
    ]


def run_vlb_cell(
    level: str,
    vlb: bool,
    fluid_racks: int,
    fluid_demand_bytes: float,
    packet_flow_bytes: int,
    seed: int,
) -> float | None:
    """Hot-pair completion time (ms) for one fidelity/VLB variant."""
    if level == "fluid":
        sched = OperaSchedule(fluid_racks, 6, seed=seed)
        timing = TimingParams(n_racks=fluid_racks, n_switches=6)
        sim = RotorFluidSimulation(
            sched, timing, hosts_per_rack=6, enable_vlb=vlb
        )
        demand = np.zeros((fluid_racks, fluid_racks))
        demand[0][1] = fluid_demand_bytes
        sim.add_demand(demand)
        res = sim.run(max_slices=8000)
        return res.pair_completion_ms[(0, 1)]
    if level == "packet":
        sim = OperaSimNetwork(
            OperaNetwork(k=8, n_racks=8, seed=seed), enable_vlb=vlb
        )
        rec = sim.start_bulk_flow(0, 30, packet_flow_bytes)
        sim.run(60 * MS)
        return rec.fct_ps / 1e9 if rec.complete else None
    raise ValueError(f"unknown fidelity level {level!r}")


def merge_vlb(values: list[float | None], **_params: object) -> dict:
    return {
        f"{level}_vlb={vlb}": value
        for (level, vlb), value in zip(_VLB_VARIANTS, values)
    }


@scenario(
    "ablation_vlb",
    tags=("fluid", "packet", "ablation"),
    cost="heavy",
    title="Ablation: two-hop VLB for skewed bulk traffic (section 4.2.2)",
    formatter="format_vlb",
    shards="shards_vlb", cell="run_vlb_cell", merge="merge_vlb",
)
def run_vlb(
    fluid_racks: int = 108,
    fluid_demand_bytes: float = 30e6,
    packet_flow_bytes: int = 2_000_000,
    seed: int = 0,
) -> dict:
    """Hot rack-pair completion time with and without VLB, both fidelities.

    A single skewed rack pair is served either direct-only or with
    RotorNet-style automatic transition to two-hop Valiant load balancing;
    VLB multiplies the pair's capacity by spreading it over all racks.
    """
    plan = shards_vlb(
        fluid_racks=fluid_racks,
        fluid_demand_bytes=fluid_demand_bytes,
        packet_flow_bytes=packet_flow_bytes,
        seed=seed,
    )
    return merge_vlb([run_vlb_cell(**cell.params) for cell in plan])


def format_vlb(results: dict) -> list[str]:
    rows = []
    for key, value in results.items():
        level, _, vlb = key.partition("_vlb=")
        cell = f"{value:.2f} ms" if value is not None else "unfinished"
        rows.append(f"{level:>7s} vlb={vlb:5s} completion: {cell}")
    return rows
