"""Figure 16 / Appendix C: average path length vs network scale.

Average shortest-path hops for Opera and cost-comparable static expanders
at several alpha cost points, as the ToR radix grows. Path lengths converge
at scale, supporting the paper's claim that cost-performance is nearly
scale-independent. Large networks use sampled BFS.
"""

from __future__ import annotations

from ..analysis.costs import expander_uplinks_for_alpha
from ..analysis.paths import sampled_average_path_length
from ..core.schedule import OperaSchedule
from ..core.topology import default_rack_count
from ..topologies.expander import ExpanderTopology
from ..scenarios import scenario

__all__ = ["run", "format_rows", "DEFAULT_RADICES", "DEFAULT_ALPHAS"]

DEFAULT_RADICES = (12, 16, 24, 32)
DEFAULT_ALPHAS = (1.0, 1.4, 2.0)


@scenario("fig16", tags=("analysis", "graph"), cost="medium",
          title="path-length scaling (Figure 16)")
def run(
    radices: tuple[int, ...] = DEFAULT_RADICES,
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    seed: int = 0,
    n_slices: int = 6,
    n_sources: int = 48,
) -> list[dict[str, float]]:
    rows = []
    for k in radices:
        u = k // 2
        n = default_rack_count(k)
        sched = OperaSchedule(n, u, seed=seed)
        row: dict[str, float] = {
            "k": float(k),
            "racks": float(n),
            "opera": sampled_average_path_length(
                sched, n_slices=n_slices, n_sources=n_sources, seed=seed
            ),
        }
        n_hosts = n * u
        for alpha in alphas:
            u_exp = expander_uplinks_for_alpha(k, alpha)
            d_exp = k - u_exp
            racks = -(-n_hosts // d_exp)
            racks += racks % 2
            topo = ExpanderTopology(racks, u_exp, d_exp, seed=seed)
            row[f"expander_a{alpha}"] = topo.average_path_length()
        rows.append(row)
    return rows


def format_rows(rows: list[dict[str, float]]) -> list[str]:
    keys = [key for key in rows[0] if key not in ("k", "racks")]
    out = ["   k   racks  " + "  ".join(f"{key:>14s}" for key in keys)]
    for r in rows:
        out.append(
            f"{r['k']:4.0f} {r['racks']:7.0f}  "
            + "  ".join(f"{r[key]:14.2f}" for key in keys)
        )
    return out
