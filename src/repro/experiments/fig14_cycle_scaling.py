"""Figure 14 / Appendix B: relative cycle time vs ToR radix, with grouping.

Without grouping the cycle grows with the rack count (~quadratic in k);
dividing the circuit switches into groups of ~6 and reconfiguring one
switch per group simultaneously keeps growth linear (k=12 -> k=64 costs
only ~6x).
"""

from __future__ import annotations

from ..core.timing import TimingParams
from ..core.topology import default_rack_count
from ..scenarios import scenario

__all__ = ["run", "format_rows", "DEFAULT_RADICES"]

DEFAULT_RADICES = (12, 24, 36, 48, 64)
GROUP_TARGET = 6


def _grouped_size(u: int) -> int:
    """Largest divisor of ``u`` that is at most the target group size."""
    for g in range(min(GROUP_TARGET, u), 0, -1):
        if u % g == 0:
            return g
    return 1


@scenario("fig14", tags=("analysis", "timing"), cost="cheap",
          title="cycle-time scaling (Figure 14)")
def run(radices: tuple[int, ...] = DEFAULT_RADICES) -> list[dict[str, float]]:
    reference = TimingParams(n_racks=default_rack_count(12), n_switches=6)
    rows = []
    for k in radices:
        u = k // 2
        n = default_rack_count(k)
        ungrouped = TimingParams(n_racks=n, n_switches=u)
        grouped = TimingParams(n_racks=n, n_switches=u, group_size=_grouped_size(u))
        rows.append(
            {
                "k": float(k),
                "racks": float(n),
                "hosts": float(n * u),
                "relative_cycle_no_groups": ungrouped.relative_cycle_time(reference),
                "relative_cycle_grouped": grouped.relative_cycle_time(reference),
                "bulk_threshold_MB_grouped": grouped.bulk_threshold_bytes / 1e6,
            }
        )
    return rows


def format_rows(rows: list[dict[str, float]]) -> list[str]:
    out = ["   k   racks    hosts   rel-cycle(no grp)  rel-cycle(grouped)  bulk-thresh MB"]
    for r in rows:
        out.append(
            f"{r['k']:4.0f} {r['racks']:7.0f} {r['hosts']:8.0f} "
            f"{r['relative_cycle_no_groups']:18.2f} {r['relative_cycle_grouped']:19.2f} "
            f"{r['bulk_threshold_MB_grouped']:15.1f}"
        )
    return out
