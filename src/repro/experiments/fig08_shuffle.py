"""Figure 8: throughput over time for the 100 KB all-to-all shuffle.

Opera carries the whole shuffle over direct (bandwidth-tax-free) circuits
and finishes in ~60-75 ms at paper scale; the 3:1 Clos (limited capacity)
and the u=7 expander (300%+ bandwidth tax) stretch past 200 ms. Opera runs
in the rack-granularity fluid simulator at full 108-rack scale; the statics
drain at their uniform-matrix max throughput.
"""

from __future__ import annotations

from ..analysis.costs import cost_equivalent_networks
from ..analysis.throughput import clos_throughput, expander_throughput
from ..core.schedule import OperaSchedule
from ..core.timing import TimingParams
from ..fluid import FluidResult, RotorFluidSimulation, static_shuffle_run
from ..topologies.expander import ExpanderTopology
from ..workloads.patterns import all_to_all_matrix
from ..scenarios import scenario

__all__ = ["run", "format_rows"]


@scenario("fig08", tags=("fluid", "throughput"), cost="medium",
          title="shuffle throughput (Figure 8)")
def run(
    k: int = 12,
    n_racks: int = 108,
    bytes_per_host_pair: int = 100_000,
    seed: int = 0,
    max_slices: int = 5_000,
) -> dict[str, FluidResult]:
    eq = cost_equivalent_networks(k, 1.3, n_racks=n_racks)
    d = eq.opera_hosts_per_rack
    sched = OperaSchedule(n_racks, eq.opera_uplinks, seed=seed)
    timing = TimingParams(n_racks=n_racks, n_switches=eq.opera_uplinks)
    opera = RotorFluidSimulation(sched, timing, hosts_per_rack=d)
    opera.add_all_to_all(bytes_per_host_pair)
    results = {"opera": opera.run(max_slices=max_slices)}

    expander = ExpanderTopology(
        eq.expander_racks, eq.expander_uplinks, eq.expander_hosts_per_rack, seed=seed
    )
    theta_exp = expander_throughput(
        expander, all_to_all_matrix(eq.expander_racks, eq.expander_hosts_per_rack)
    )
    results["expander"] = static_shuffle_run(
        theta_exp, eq.expander_racks, eq.expander_hosts_per_rack, bytes_per_host_pair
    )
    theta_clos = clos_throughput(
        all_to_all_matrix(n_racks, d), eq.clos_oversubscription, d
    )
    results["clos"] = static_shuffle_run(
        theta_clos, n_racks, d, bytes_per_host_pair
    )
    return results


def format_rows(data: dict[str, FluidResult]) -> list[str]:
    rows = ["network   99p completion (ms)   peak thr   mid thr"]
    for name, res in data.items():
        series = res.throughput_series
        peak = max(v for _t, v in series)
        mid = [v for t, v in series[: max(1, len(series) // 2)]]
        rows.append(
            f"{name:>9s} {res.completion_percentile_ms(99)!s:>18} "
            f"{peak:10.3f} {sum(mid) / len(mid):9.3f}"
        )
    return rows
