"""Figure 7: Datamining FCTs vs load across the four networks.

Paper setup: Poisson arrivals of the Datamining workload at 1-40% load on
the cost-equivalent 648-host networks; Opera admits 40% while the statics
saturate past 25%, and non-hybrid RotorNet's short-flow FCTs are orders of
magnitude worse. Reproduced at reduced scale (see :mod:`.fctsim`).

The ``(network, load)`` grid shards: each point is an independent cell
with a hash-derived seed, so the Runner fans the grid out across workers
and resumes an interrupted sweep from the per-cell cache. ``run()`` is
implemented *in terms of* the shard plan, which makes the sharded and
unsharded paths bit-identical by construction.
"""

from __future__ import annotations

from ..scenarios import scenario
from .fctsim import (
    FctResult,
    fct_shard_cells,
    format_rows,
    merge_fct_cells,
    run_fct_cell,
)

__all__ = ["run", "shards", "run_cell", "merge", "format_rows",
           "DEFAULT_LOADS", "DEFAULT_NETWORKS"]

DEFAULT_LOADS = (0.01, 0.10, 0.25)
DEFAULT_NETWORKS = ("opera", "expander", "clos", "rotornet-hybrid", "rotornet")


def shards(
    loads: tuple[float, ...] = DEFAULT_LOADS,
    networks: tuple[str, ...] = DEFAULT_NETWORKS,
    duration_ms: float = 4.0,
    seed: int = 0,
    scale: str = "default",
):
    """Cell plan: one ``(network, load)`` point per cell."""
    return fct_shard_cells(
        "fig07", "datamining", networks, loads, duration_ms, seed, scale
    )


run_cell = run_fct_cell
merge = merge_fct_cells


@scenario("fig07", tags=("packet", "fct"), cost="heavy",
          title="Datamining FCTs, reduced scale (Figure 7)",
          shards="shards", cell="run_cell", merge="merge",
          aliases=("fig07_datamining",))
def run(
    loads: tuple[float, ...] = DEFAULT_LOADS,
    networks: tuple[str, ...] = DEFAULT_NETWORKS,
    duration_ms: float = 4.0,
    seed: int = 0,
    scale: str = "default",
) -> list[FctResult]:
    """Datamining FCTs per load/network at a ``REPRO_SCALE`` profile."""
    plan = shards(
        loads=loads, networks=networks, duration_ms=duration_ms,
        seed=seed, scale=scale,
    )
    return merge([run_cell(**cell.params) for cell in plan])
