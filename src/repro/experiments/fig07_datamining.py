"""Figure 7: Datamining FCTs vs load across the four networks.

Paper setup: Poisson arrivals of the Datamining workload at 1-40% load on
the cost-equivalent 648-host networks; Opera admits 40% while the statics
saturate past 25%, and non-hybrid RotorNet's short-flow FCTs are orders of
magnitude worse. Reproduced at reduced scale (see :mod:`.fctsim`).
"""

from __future__ import annotations

from ..workloads.distributions import DATAMINING
from ..scenarios import scenario
from .fctsim import FctResult, format_rows, resolve_scale, run_fct_experiment

__all__ = ["run", "format_rows", "DEFAULT_LOADS", "DEFAULT_NETWORKS"]

DEFAULT_LOADS = (0.01, 0.10, 0.25)
DEFAULT_NETWORKS = ("opera", "expander", "clos", "rotornet-hybrid", "rotornet")


@scenario("fig07", tags=("packet", "fct"), cost="heavy",
          title="Datamining FCTs, reduced scale (Figure 7)")
def run(
    loads: tuple[float, ...] = DEFAULT_LOADS,
    networks: tuple[str, ...] = DEFAULT_NETWORKS,
    duration_ms: float = 4.0,
    seed: int = 0,
    scale: str = "default",
) -> list[FctResult]:
    """Datamining FCTs per load/network at a ``REPRO_SCALE`` profile."""
    k, n_racks, duration_factor = resolve_scale(scale)
    results = []
    for kind in networks:
        for load in loads:
            results.append(
                run_fct_experiment(
                    kind,
                    DATAMINING,
                    load,
                    duration_ms=duration_ms * duration_factor,
                    k=k,
                    n_racks=n_racks,
                    seed=seed,
                )
            )
    return results
