"""Dynamic failure injection: fail, detect, reroute, recover (Figure 11's
failure model run live inside the packet engine).

Where ``fig11`` measures *static* connectivity of the failed topology,
this scenario injects the same seeded failure draws into a *running*
Opera network mid-workload (:meth:`OperaSimNetwork.install_failures`) and
measures what the paper's recovery story actually costs end to end: the
goodput dip while stale routes blackhole traffic during the hello
propagation window, the FCT degradation of the surviving flows, and the
time until every affected (recoverable) flow has completed.

Shards over the ``(component, fraction, injection time)`` grid, with a
``none`` baseline cell (armed-but-empty failure machinery — bitwise
identical to an unarmed run) for the degradation deltas. Every cell draws
its failure set from a hash-derived per-cell seed, mirroring ``fig11``'s
independence structure, and runs at the ``REPRO_SCALE`` profile of the
other packet-level figures.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass

from ..core.faults import FailureSchedule
from ..core.topology import OperaNetwork
from ..net import OperaSimNetwork
from ..scenarios import Cell, derive_cell_seed, scenario
from ..workloads.arrivals import PoissonArrivals
from .fctsim import DISTRIBUTIONS, MS, resolve_scale, scheduler_for_scale

__all__ = [
    "DynamicFaultResult",
    "run",
    "shards",
    "run_cell",
    "merge",
    "format_rows",
]

#: Grid components; ``none`` is the armed-but-empty baseline.
_COMPONENTS = ("none", "links", "racks", "switches")

#: Plural grid name -> FailureSchedule.random component kind.
_KIND = {"links": "link", "racks": "rack", "switches": "switch"}


@dataclass
class DynamicFaultResult:
    """One cell: a seeded failure draw injected into a live workload."""

    component: str
    fraction: float
    inject_ms: float
    n_flows: int
    completed: int
    #: Flows that lost >= 1 packet to a blackhole / written off.
    affected: int
    unrecoverable: int
    #: Affected, recoverable flows still incomplete at the horizon
    #: (should be 0: the recovery layer must not wedge).
    wedged: int
    blackholed_packets: int
    blackholed_bytes: int
    #: NDP timeout retransmissions + replayed pulls (0 for ``none``).
    timeout_retransmits: int
    #: Hello-propagation detection lag of the first event, ms.
    detection_ms: float | None
    #: Failure -> last affected recoverable flow completed, ms.
    recovery_ms: float | None
    #: Delivered payload bytes in the window before / after injection
    #: (equal-width windows; the dip is the failure's goodput cost).
    goodput_pre_bytes: int
    goodput_post_bytes: int
    p99_fct_us: float | None


def _cell_cost(scale: str, load: float, duration_ms: float) -> float:
    k, n_racks, duration_factor = resolve_scale(scale)
    hosts = n_racks * (k // 2)
    return hosts * max(load, 0.01) * (duration_ms * duration_factor / 4.0)


def shards(
    fractions: tuple[float, ...] = (0.1, 0.25),
    inject_ms: tuple[float, ...] = (2.0,),
    load: float = 0.1,
    duration_ms: float = 4.0,
    drain_ms: float = 24.0,
    distribution: str = "datamining",
    seed: int = 0,
    scale: str | None = None,
) -> list[Cell]:
    """Cell plan: baseline plus one cell per (component, fraction, time)."""
    scale = scale or os.environ.get("REPRO_SCALE", "default")
    cells = []
    # One workload for the whole grid (same arrivals in every cell), so a
    # failure cell's degradation reads directly against the ``none``
    # baseline; only the *failure draw* varies per cell.
    workload_seed = derive_cell_seed(seed, "fig11_dynamic", "workload")

    def add(component: str, fraction: float, at_ms: float) -> None:
        key = f"{component}@{fraction:g}@{at_ms:g}ms"
        cells.append(
            Cell(
                key=key,
                params={
                    "component": component,
                    "fraction": fraction,
                    "inject_ms": at_ms,
                    "load": load,
                    "duration_ms": duration_ms,
                    "drain_ms": drain_ms,
                    "distribution": distribution,
                    "scale": scale,
                    "workload_seed": workload_seed,
                    "seed": derive_cell_seed(seed, "fig11_dynamic", key),
                },
                cost=_cell_cost(scale, load, duration_ms + drain_ms),
            )
        )

    add("none", 0.0, inject_ms[0])
    for component in _COMPONENTS[1:]:
        for fraction in fractions:
            for at_ms in inject_ms:
                add(component, fraction, at_ms)
    return cells


def run_cell(
    component: str,
    fraction: float,
    inject_ms: float,
    load: float,
    duration_ms: float,
    drain_ms: float,
    distribution: str,
    scale: str,
    workload_seed: int,
    seed: int,
) -> DynamicFaultResult:
    """One live-injection run: build, arm, load, fail, recover, measure."""
    k, n_racks, duration_factor = resolve_scale(scale)
    duration_ms *= duration_factor
    inject_ms = min(inject_ms, duration_ms / 2)
    inject_ps = int(inject_ms * MS)

    overrides: dict[str, str] = {}
    scheduler = scheduler_for_scale(scale)
    if not os.environ.get("REPRO_SCHEDULER"):
        overrides["REPRO_SCHEDULER"] = scheduler
    if overrides:
        os.environ.update(overrides)
        try:
            net = OperaSimNetwork(OperaNetwork(k=k, n_racks=n_racks, seed=0))
        finally:
            for key in overrides:
                del os.environ[key]
    else:
        net = OperaSimNetwork(OperaNetwork(k=k, n_racks=n_racks, seed=0))

    if component == "none":
        schedule = FailureSchedule.empty()
    else:
        schedule = FailureSchedule.random(
            n_racks,
            net.network.n_switches,
            _KIND[component],
            fraction,
            inject_ps,
            random.Random(seed ^ 0x5DEECE66D),
        )
    injector = net.install_failures(schedule)

    arrivals = PoissonArrivals(
        DISTRIBUTIONS[distribution].truncated(3_000_000),
        load=load,
        n_hosts=len(net.hosts),
        hosts_per_rack=net.network.hosts_per_rack,
        seed=workload_seed,
    )
    threshold = net.network.bulk_threshold_bytes
    for flow in arrivals.flows(duration_ps=int(duration_ms * MS)):
        if flow.size_bytes >= threshold:
            net.start_bulk_flow(
                flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
            )
        else:
            net.start_low_latency_flow(
                flow.src_host, flow.dst_host, flow.size_bytes, flow.time_ps
            )
    net.run(until_ps=int((duration_ms + drain_ms) * MS))

    stats = net.stats
    window_ps = 2 * stats.throughput_bin_ps
    recovery_ps = stats.recovery_time_ps(inject_ps)
    wedged = sum(
        1
        for flow_id in stats.affected_flows - stats.unrecoverable_flows
        if not stats.flows[flow_id].complete
    )
    detection_ms = None
    if injector.log:
        applied, detected, _event = injector.log[0]
        detection_ms = (detected - applied) / MS
    return DynamicFaultResult(
        component=component,
        fraction=fraction,
        inject_ms=inject_ms,
        n_flows=len(stats.flows),
        completed=len(stats.completed_flows()),
        affected=len(stats.affected_flows),
        unrecoverable=len(stats.unrecoverable_flows),
        wedged=wedged,
        blackholed_packets=stats.total_blackholed_packets(),
        blackholed_bytes=stats.blackholed_bytes,
        timeout_retransmits=(
            injector.ndp.timeout_retransmits + injector.ndp.replayed_pulls
        ),
        detection_ms=detection_ms,
        recovery_ms=None if recovery_ps is None else recovery_ps / MS,
        goodput_pre_bytes=stats.delivered_bytes_between(
            max(0, inject_ps - window_ps), inject_ps
        ),
        goodput_post_bytes=stats.delivered_bytes_between(
            inject_ps, inject_ps + window_ps
        ),
        p99_fct_us=stats.fct_percentile_us(99),
    )


def merge(
    values: list[DynamicFaultResult], **_params: object
) -> list[DynamicFaultResult]:
    """Cell values in plan order are exactly the grid's result list."""
    return list(values)


@scenario(
    "fig11_dynamic",
    tags=("packet", "faults"),
    cost="medium",
    title="live failure injection (dynamic Figure 11)",
    shards="shards",
    cell="run_cell",
    merge="merge",
)
def run(
    fractions: tuple[float, ...] = (0.1, 0.25),
    inject_ms: tuple[float, ...] = (2.0,),
    load: float = 0.1,
    duration_ms: float = 4.0,
    drain_ms: float = 24.0,
    distribution: str = "datamining",
    seed: int = 0,
    scale: str | None = None,
) -> list[DynamicFaultResult]:
    """Mid-run failure sweep: goodput dip, FCT hit, recovery time."""
    plan = shards(
        fractions=fractions,
        inject_ms=inject_ms,
        load=load,
        duration_ms=duration_ms,
        drain_ms=drain_ms,
        distribution=distribution,
        seed=seed,
        scale=scale,
    )
    return merge([run_cell(**cell.params) for cell in plan])


def format_rows(results: list[DynamicFaultResult]) -> list[str]:
    rows = [
        "component  frac  t(ms)  flows done  aff unrec wdg | "
        "bh-pkts  detect(ms) recover(ms)  goodput pre->post  p99(us)"
    ]
    for r in results:
        detect = f"{r.detection_ms:.2f}" if r.detection_ms is not None else "-"
        recover = f"{r.recovery_ms:.2f}" if r.recovery_ms is not None else "-"
        p99 = f"{r.p99_fct_us:.0f}" if r.p99_fct_us is not None else "-"
        rows.append(
            f"{r.component:>9s} {r.fraction:5.0%} {r.inject_ms:6.1f} "
            f"{r.n_flows:5d} {r.completed:4d}  {r.affected:3d} "
            f"{r.unrecoverable:5d} {r.wedged:3d} | {r.blackholed_packets:7d} "
            f"{detect:>10s} {recover:>11s}  "
            f"{r.goodput_pre_bytes:8d}->{r.goodput_post_bytes:<8d} {p99:>7s}"
        )
    return rows
