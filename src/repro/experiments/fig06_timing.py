"""Figure 6 / section 4.1: the reference design's time constants."""

from __future__ import annotations

from ..core.timing import PS_PER_US, TimingParams, worst_case_epsilon_ps
from ..scenarios import scenario


@scenario("fig06", tags=("analysis", "timing"), cost="cheap",
          title="time constants (Figure 6 / §4.1)")
def run(n_racks: int = 108, n_switches: int = 6) -> dict[str, float]:
    timing = TimingParams(n_racks=n_racks, n_switches=n_switches)
    return {
        "epsilon_us": timing.epsilon_ps / PS_PER_US,
        "reconfiguration_us": timing.reconfiguration_ps / PS_PER_US,
        "slice_us": timing.slice_ps / PS_PER_US,
        "cycle_slices": float(timing.cycle_slices),
        "cycle_ms": timing.cycle_ps / 1e9,
        "duty_cycle": timing.duty_cycle,
        "bulk_threshold_MB": timing.bulk_threshold_bytes / 1e6,
        "derived_epsilon_us": worst_case_epsilon_ps() / PS_PER_US,
    }


def format_rows(data: dict[str, float]) -> list[str]:
    return [f"{key:>22s} = {value:.3f}" for key, value in data.items()]
