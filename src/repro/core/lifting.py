"""Graph lifting: build large factorizations from small ones.

The paper (section 3.3) notes that randomly factoring a complete graph "can
be computationally expensive for large networks", so Opera employs *graph
lifting* to generate large factorizations from smaller ones. We implement a
random 2-lift:

Given a factorization of ``K_n`` (+ loops) into ``n`` symmetric matchings,
replace each rack ``v`` by two copies ``v`` and ``v + n``. Each base matching
``M`` lifts to two complementary matchings on ``2n`` racks. Independently for
every base edge ``(i, j)`` of ``M``, one lift receives the *parallel* pair
(``i0—j0``, ``i1—j1``) and the other the *crossed* pair (``i0—j1``,
``i1—j0``), with the assignment chosen by fair coin flip. A base self-loop
``(i, i)`` lifts to either two loops or the proper edge ``i0—i1``.

Random signings are the Bilu–Linial construction: 2-lifts of expanders remain
expanders with high probability, which is exactly the property Opera's
topology slices need. Both lifts are involutions and together cover each
lifted pair exactly once, so the ``2n`` lifted matchings factor ``K_{2n}`` +
loops. Applying the lift ``k`` times scales an ``n``-rack factorization to
``n * 2^k`` racks in ``O(n^2 * 2^k)`` time.
"""

from __future__ import annotations

import random
from typing import Sequence

from .matchings import Matching, random_factorization, relabel_matching

__all__ = ["lift_factorization", "lifted_random_factorization"]


def _lift_matching(
    matching: Sequence[int], n: int, rng: random.Random | None
) -> tuple[Matching, Matching]:
    """Split one base matching into two complementary lifted matchings."""
    lift_a = [0] * (2 * n)
    lift_b = [0] * (2 * n)
    for i in range(n):
        j = matching[i]
        if j < i:
            continue
        crossed_first = rng.random() < 0.5 if rng is not None else False
        first, second = (lift_b, lift_a) if crossed_first else (lift_a, lift_b)
        # ``first`` gets the parallel pair, ``second`` the crossed pair.
        first[i] = j
        first[j] = i
        first[i + n] = j + n
        first[j + n] = i + n
        second[i] = j + n
        second[j + n] = i
        second[j] = i + n
        second[i + n] = j
    return tuple(lift_a), tuple(lift_b)


def lift_factorization(
    factors: Sequence[Sequence[int]], rng: random.Random | None = None
) -> list[Matching]:
    """Random 2-lift: a factorization of ``K_n`` + loops to ``K_{2n}`` + loops.

    Returns ``2n`` matchings given ``n`` input matchings. Pass ``rng`` for
    the randomized (expansion-preserving) signing; ``None`` gives the
    deterministic all-parallel/all-crossed lift. The input is not validated
    here (use :func:`repro.core.matchings.verify_factorization`).
    """
    if not factors:
        raise ValueError("cannot lift an empty factorization")
    n = len(factors[0])
    lifted: list[Matching] = []
    for matching in factors:
        lift_a, lift_b = _lift_matching(matching, n, rng)
        lifted.append(lift_a)
        lifted.append(lift_b)
    return lifted


def lifted_random_factorization(
    n: int,
    rng: random.Random | None = None,
    base_threshold: int = 512,
) -> list[Matching]:
    """Randomized factorization of ``K_n`` + loops, using lifting when possible.

    If ``n`` can be written as ``b * 2^k`` with ``b <= base_threshold`` even,
    the factorization is built by repeatedly applying random 2-lifts to a
    mixed random base factorization; otherwise (or when no lift is needed)
    it falls back to the direct randomized construction. Either way the
    result is conjugated by a random rack relabeling, matching the paper's
    randomized design-time generation.
    """
    if n <= 0 or n % 2:
        raise ValueError(f"rack count must be positive and even, got {n}")
    rng = rng or random.Random()

    base = n
    lifts = 0
    while base > base_threshold and base % 2 == 0:
        base //= 2
        lifts += 1
    if base % 2:
        # Odd quotient: back off one lift so the base stays even.
        base *= 2
        lifts -= 1

    if lifts <= 0:
        return random_factorization(n, rng)

    factors: list[Matching] = list(random_factorization(base, rng))
    for _ in range(lifts):
        factors = lift_factorization(factors, rng)

    sigma = list(range(n))
    rng.shuffle(sigma)
    factors = [relabel_matching(p, sigma) for p in factors]
    rng.shuffle(factors)
    return factors
