"""Routing-state scalability model (paper section 6.2, Table 1).

A straightforward Opera implementation needs ``O(n_racks^2)`` rules: there
are ``n_racks`` topology slices and, within each slice, one low-latency rule
per non-local destination plus one bulk rule per directly-connected rack
(``u - 1`` up circuits). The paper compiles these rulesets with Barefoot's
Capilano tool against a Tofino 65x100GE switch; we model the same counts and
express utilization against the fitted rule capacity of that switch.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TOFINO_RULE_CAPACITY",
    "PAPER_TABLE1_CONFIGS",
    "RuleSetSize",
    "ruleset_size",
    "table1_rows",
]

#: Effective rule capacity of the Tofino 65x100GE switch implied by the
#: paper's utilization column (entries / utilization is ~1.701M for every
#: row of Table 1).
TOFINO_RULE_CAPACITY = 1_701_000

#: The (n_racks, n_uplinks) pairs evaluated in Table 1.
PAPER_TABLE1_CONFIGS: tuple[tuple[int, int], ...] = (
    (108, 6),
    (252, 9),
    (520, 13),
    (768, 16),
    (1008, 18),
    (1200, 20),
)


@dataclass(frozen=True)
class RuleSetSize:
    """Ruleset accounting for one datacenter size."""

    n_racks: int
    n_uplinks: int
    low_latency_entries: int
    bulk_entries: int

    @property
    def entries(self) -> int:
        return self.low_latency_entries + self.bulk_entries

    @property
    def utilization(self) -> float:
        """Fraction of the Tofino's rule capacity consumed."""
        return self.entries / TOFINO_RULE_CAPACITY


def ruleset_size(n_racks: int, n_uplinks: int) -> RuleSetSize:
    """Rules required in each ToR for an Opera network of this size.

    Low-latency table: one entry per (slice, non-local destination rack) —
    ``n_racks * (n_racks - 1)`` in total, as there are ``n_racks`` slices.
    Bulk table: one entry per (slice, directly-connected rack); with one
    switch down per slice there are ``u - 1`` direct circuits per slice.
    """
    if n_racks < 2:
        raise ValueError("need at least two racks")
    if n_uplinks < 2:
        raise ValueError("need at least two uplinks")
    return RuleSetSize(
        n_racks=n_racks,
        n_uplinks=n_uplinks,
        low_latency_entries=n_racks * (n_racks - 1),
        bulk_entries=n_racks * (n_uplinks - 1),
    )


def table1_rows() -> list[RuleSetSize]:
    """The exact rows of the paper's Table 1."""
    return [ruleset_size(n, u) for n, u in PAPER_TABLE1_CONFIGS]
