"""Forwarding policy: traffic classes and the P4-style pipeline (§3.4, §4.3).

Opera serves each packet one of two ways:

* **low latency** — forwarded immediately over the current slice's expander,
  paying a modest bandwidth tax; the first ToR stamps the packet with the
  slice (the paper's P4 "configuration register") and every subsequent ToR
  routes it using the tables for that stamped slice, guaranteeing loop
  freedom while the topology changes underneath;
* **bulk** — buffered at the source until a slice provides a direct one-hop
  circuit to the destination rack, paying no bandwidth tax.

The default classifier is flow size against the cycle-amortization threshold
(15 MB for the reference design); applications may instead tag flows
explicitly (e.g. a shuffle marks everything bulk, section 5.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .routing import OperaRouting
from .schedule import OperaSchedule

__all__ = ["TrafficClass", "classify_flow", "ForwardingPipeline"]


class TrafficClass(enum.Enum):
    """Service class carried in the packet's DSCP field."""

    LOW_LATENCY = "low_latency"
    BULK = "bulk"


def classify_flow(
    size_bytes: int,
    threshold_bytes: int,
    tagged: TrafficClass | None = None,
) -> TrafficClass:
    """Classify a flow, honouring an application tag when present."""
    if tagged is not None:
        return tagged
    if size_bytes < 0:
        raise ValueError("flow size must be non-negative")
    if threshold_bytes <= 0:
        raise ValueError("threshold must be positive")
    return (
        TrafficClass.BULK
        if size_bytes >= threshold_bytes
        else TrafficClass.LOW_LATENCY
    )


@dataclass
class ForwardingPipeline:
    """Slice-aware next-hop lookups shared by the simulators.

    Wraps an :class:`OperaRouting` (low-latency tables) plus the schedule's
    direct-connection lookups (bulk tables), mirroring the two match tables
    of the paper's P4 program.
    """

    schedule: OperaSchedule
    routing: OperaRouting

    @classmethod
    def for_schedule(cls, schedule: OperaSchedule) -> "ForwardingPipeline":
        return cls(schedule=schedule, routing=OperaRouting(schedule))

    def stamp(self, slice_index: int) -> int:
        """Value of the configuration register recorded at the first ToR."""
        return slice_index % self.schedule.cycle_slices

    def low_latency_next_hop(
        self, rack: int, dst_rack: int, stamped_slice: int, salt: int = 0
    ) -> tuple[int, int] | None:
        """Next ``(rack, switch)`` along the stamped slice's expander path."""
        if rack == dst_rack:
            return None
        return self.routing.routes(stamped_slice).next_hop(rack, dst_rack, salt)

    def low_latency_path(
        self, rack: int, dst_rack: int, stamped_slice: int, salt: int = 0
    ) -> list[int] | None:
        return self.routing.routes(stamped_slice).shortest_path(
            rack, dst_rack, salt
        )

    def bulk_direct_switch(
        self, rack: int, dst_rack: int, slice_index: int
    ) -> int | None:
        """Circuit switch providing a direct circuit this slice, if any."""
        if rack == dst_rack:
            return None
        return self.schedule.direct_switch(rack, dst_rack, slice_index)

    def bulk_wait_slices(self, rack: int, dst_rack: int, slice_index: int) -> int:
        """Slices until bulk traffic for ``dst_rack`` can go direct."""
        return self.schedule.wait_slices_for_direct(rack, dst_rack, slice_index)
