"""The rotor-switch schedule at the heart of Opera (paper sections 3.1–3.3).

An :class:`OperaSchedule` fixes, at design time:

* a factorization of the complete rack graph into ``n_racks`` disjoint
  symmetric matchings (:mod:`repro.core.matchings`),
* a random assignment of those matchings to the ``u`` rotor circuit
  switches (``n_racks / u`` matchings per switch), and
* a random cyclic order in which each switch steps through its matchings.

Reconfigurations are *offset* (Figure 3b): switches are organized into
reconfiguration groups (Appendix B; by default one global group, i.e. at most
one switch reconfiguring at any moment). During topology slice ``s`` the
member ``s mod group_size`` of every group is draining/reconfiguring, and
packets sent during that slice are not routed through it. The union of the
remaining switches' matchings is the slice's expander graph.

There is no runtime topology computation: everything here is a pure function
of the slice index.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Sequence

from .lifting import lifted_random_factorization
from .matchings import Matching, verify_factorization
from .timing import TimingParams

__all__ = ["OperaSchedule", "DirectConnection", "slice_activations"]


def slice_activations(
    schedule, rack: int, n_switches: int, skip_down: bool = True
) -> list[list[tuple[int, int]]]:
    """Per-slice live circuits of one rack: ``[[(switch, peer), ...], ...]``.

    One row per topology slice of the cycle, listing every ``(switch,
    peer_rack)`` circuit that is up for ``rack`` during that slice —
    reconfiguring switches (when the schedule models them and
    ``skip_down`` is set) and identity assignments excluded. Works for
    any schedule exposing ``cycle_slices`` / ``matching_of`` (Opera's
    offset schedule and RotorNet's lockstep one alike).

    This is the slice-boundary batching table: the packet builders
    compute it once per rack at construction so the per-slice
    reconfiguration event rotates every port's matching with plain list
    lookups — no per-port schedule queries or allocations inside the
    event loop.
    """
    is_down = getattr(schedule, "is_down", None) if skip_down else None
    rows: list[list[tuple[int, int]]] = []
    for s in range(schedule.cycle_slices):
        row: list[tuple[int, int]] = []
        for w in range(n_switches):
            if is_down is not None and is_down(w, s):
                continue
            peer = schedule.matching_of(w, s)[rack]
            if peer != rack:
                row.append((w, peer))
        rows.append(row)
    return rows


@dataclass(frozen=True)
class DirectConnection:
    """A one-hop circuit between two racks during a topology slice."""

    slice_index: int
    switch: int
    rack_a: int
    rack_b: int


class OperaSchedule:
    """Deterministic cyclic schedule of matchings across rotor switches.

    Parameters
    ----------
    n_racks:
        Number of ToR switches (even, divisible by ``n_switches``).
    n_switches:
        Number of rotor circuit switches ``u`` (= ToR uplinks).
    group_size:
        Reconfiguration group size (Appendix B); defaults to ``n_switches``
        (one switch down at a time). Must divide ``n_switches``.
    seed:
        Seed for the design-time randomness (factorization, assignment,
        cycle order). The same seed reproduces the same network.
    factorization:
        Pre-computed factorization to use instead of generating one.
    require_connected:
        Section 3.3: a random realization may fail to have good expansion in
        some slice; when this flag is set (default) and no explicit
        factorization was supplied, generation is retried with fresh
        randomness until every slice's up-switch union is connected.
    """

    def __init__(
        self,
        n_racks: int,
        n_switches: int,
        group_size: int | None = None,
        seed: int | None = 0,
        factorization: Sequence[Matching] | None = None,
        validate: bool = True,
        require_connected: bool = True,
        max_attempts: int = 200,
    ) -> None:
        if n_switches <= 0:
            raise ValueError("need at least one circuit switch")
        if n_racks % n_switches:
            raise ValueError(
                f"{n_racks} racks not divisible by {n_switches} switches"
            )
        self.n_racks = n_racks
        self.n_switches = n_switches
        self.group_size = group_size if group_size is not None else n_switches
        if self.group_size <= 0 or n_switches % self.group_size:
            raise ValueError(
                f"group size {self.group_size} must divide {n_switches}"
            )
        rng = random.Random(seed)
        retry = require_connected and factorization is None
        attempts = max_attempts if retry else 1
        for attempt in range(attempts):
            if factorization is None:
                candidate: list[Matching] = lifted_random_factorization(
                    n_racks, rng
                )
            else:
                candidate = list(factorization)
            if validate:
                verify_factorization(candidate, n_racks)
            self.matchings = candidate

            # Random assignment of matchings to switches; each switch's list
            # is already in a random order, which doubles as its cycle order.
            order = list(range(n_racks))
            rng.shuffle(order)
            per_switch = n_racks // n_switches
            self._switch_matchings: list[list[int]] = [
                order[w * per_switch : (w + 1) * per_switch]
                for w in range(n_switches)
            ]
            if not retry or self._all_slices_connected():
                break
        else:
            raise ValueError(
                f"no realization with fully-connected slices found in "
                f"{max_attempts} attempts (n_racks={n_racks}, u={n_switches})"
            )

    # ------------------------------------------------------------------ shape

    @property
    def matchings_per_switch(self) -> int:
        return self.n_racks // self.n_switches

    @property
    def n_groups(self) -> int:
        return self.n_switches // self.group_size

    @property
    def cycle_slices(self) -> int:
        """Number of topology slices per full cycle."""
        return self.group_size * self.matchings_per_switch

    def timing(self, **overrides) -> TimingParams:
        """Time constants for this schedule (see :class:`TimingParams`)."""
        params = dict(
            n_racks=self.n_racks,
            n_switches=self.n_switches,
            group_size=self.group_size,
        )
        params.update(overrides)
        return TimingParams(**params)

    # -------------------------------------------------------------- per slice

    def _advances(self, switch: int, slice_index: int) -> int:
        member = switch % self.group_size
        s = slice_index % self.cycle_slices
        return (s + self.group_size - 1 - member) // self.group_size

    def matching_index_of(self, switch: int, slice_index: int) -> int:
        """Index (within the switch's cycle order) shown during a slice."""
        return self._advances(switch, slice_index) % self.matchings_per_switch

    def matching_of(self, switch: int, slice_index: int) -> Matching:
        """The matching physically instantiated by ``switch`` in a slice."""
        idx = self.matching_index_of(switch, slice_index)
        return self.matchings[self._switch_matchings[switch][idx]]

    def is_down(self, switch: int, slice_index: int) -> bool:
        """True if ``switch`` is draining/reconfiguring during the slice."""
        s = slice_index % self.cycle_slices
        return switch % self.group_size == s % self.group_size

    def down_switches(self, slice_index: int) -> list[int]:
        """Switches with an impending reconfiguration during the slice."""
        return [w for w in range(self.n_switches) if self.is_down(w, slice_index)]

    def up_switches(self, slice_index: int) -> list[int]:
        return [w for w in range(self.n_switches) if not self.is_down(w, slice_index)]

    def active_matchings(self, slice_index: int) -> dict[int, Matching]:
        """Map of up switch -> instantiated matching for a slice."""
        return {
            w: self.matching_of(w, slice_index)
            for w in self.up_switches(slice_index)
        }

    def neighbors(
        self, rack: int, slice_index: int, include_down: bool = False
    ) -> list[tuple[int, int]]:
        """``(peer_rack, switch)`` pairs reachable one hop from ``rack``.

        Self-loop assignments (the identity matching) are skipped — that
        uplink simply idles for the slice.
        """
        out = []
        for w in range(self.n_switches):
            if not include_down and self.is_down(w, slice_index):
                continue
            peer = self.matching_of(w, slice_index)[rack]
            if peer != rack:
                out.append((peer, w))
        return out

    def slice_adjacency(
        self, slice_index: int, include_down: bool = False
    ) -> list[list[int]]:
        """Adjacency lists (rack -> peer racks) of the slice's expander."""
        adj: list[list[int]] = [[] for _ in range(self.n_racks)]
        for w in range(self.n_switches):
            if not include_down and self.is_down(w, slice_index):
                continue
            matching = self.matching_of(w, slice_index)
            for a in range(self.n_racks):
                b = matching[a]
                if a < b:
                    adj[a].append(b)
                    adj[b].append(a)
        return adj

    # ------------------------------------------------------------- direct use

    def direct_connections(self, slice_index: int) -> Iterator[DirectConnection]:
        """All up one-hop circuits available during a slice."""
        for w in self.up_switches(slice_index):
            matching = self.matching_of(w, slice_index)
            for a in range(self.n_racks):
                b = matching[a]
                if a < b:
                    yield DirectConnection(slice_index, w, a, b)

    def direct_switch(self, rack_a: int, rack_b: int, slice_index: int) -> int | None:
        """The up switch directly connecting two racks in a slice, if any."""
        for w in self.up_switches(slice_index):
            if self.matching_of(w, slice_index)[rack_a] == rack_b:
                return w
        return None

    @lru_cache(maxsize=None)
    def direct_slices(self, rack_a: int, rack_b: int) -> tuple[int, ...]:
        """Slices (within one cycle) whose topology includes circuit a—b.

        Each unordered rack pair appears in exactly one matching of the
        factorization, which its owning switch instantiates for
        ``group_size`` consecutive slices per cycle — one of which is the
        switch's own down slice. The returned tuple therefore has
        ``group_size - 1`` entries.
        """
        if rack_a == rack_b:
            raise ValueError("a rack has no circuit to itself")
        return tuple(
            s
            for s in range(self.cycle_slices)
            if self.direct_switch(rack_a, rack_b, s) is not None
        )

    def wait_slices_for_direct(self, rack_a: int, rack_b: int, slice_index: int) -> int:
        """Slices until the next direct a—b circuit (0 if up right now)."""
        s = slice_index % self.cycle_slices
        directs = self.direct_slices(rack_a, rack_b)
        best = min((d - s) % self.cycle_slices for d in directs)
        return best

    # ------------------------------------------------------------- validation

    def _all_slices_connected(self) -> bool:
        """True if every slice's up-switch union is a connected graph."""
        for s in range(self.cycle_slices):
            adj = self.slice_adjacency(s)
            seen = [False] * self.n_racks
            stack = [0]
            seen[0] = True
            count = 1
            while stack:
                node = stack.pop()
                for peer in adj[node]:
                    if not seen[peer]:
                        seen[peer] = True
                        count += 1
                        stack.append(peer)
            if count != self.n_racks:
                return False
        return True

    def verify_cycle_connectivity(self) -> None:
        """Check every rack pair gets a direct circuit each cycle."""
        covered: set[tuple[int, int]] = set()
        for s in range(self.cycle_slices):
            for conn in self.direct_connections(s):
                covered.add((conn.rack_a, conn.rack_b))
        want = self.n_racks * (self.n_racks - 1) // 2
        if len(covered) != want:
            raise AssertionError(
                f"cycle covers {len(covered)} rack pairs, expected {want}"
            )
