"""Per-slice routing over Opera's time-varying expander (paper section 3.4).

For every topology slice, low-latency traffic follows shortest paths over the
union of the matchings instantiated by the *up* circuit switches (the switch
with an impending reconfiguration carries no new traffic). All tables are
pure functions of the slice index and are computed at design time, exactly
as in the paper — there is no runtime topology computation.

:class:`SliceRoutes` holds the all-pairs shortest-path state for one slice:
hop distances plus, for each (src, dst), every equal-cost next hop annotated
with the circuit switch providing it (so a packet can be placed on the right
uplink, and transports can spray across equal-cost options).

:class:`OperaRouting` caches per-slice tables for a schedule, optionally
under a :class:`~repro.core.faults.FailureSet` — routing around failures is
just routing on the surviving adjacency.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from .faults import FailureSet
from .schedule import OperaSchedule

__all__ = [
    "UNREACHABLE",
    "Adjacency",
    "build_adjacency",
    "SliceRoutes",
    "OperaRouting",
]

#: Hop distance marker for unreachable rack pairs.
UNREACHABLE = -1

#: ``adj[rack]`` is a list of ``(peer_rack, circuit_switch)`` edges.
Adjacency = list[list[tuple[int, int]]]


def build_adjacency(
    schedule: OperaSchedule,
    slice_index: int,
    failures: FailureSet | None = None,
    include_down: bool = False,
) -> Adjacency:
    """Rack-level adjacency (with switch labels) for one topology slice."""
    failures = failures or FailureSet.none()
    n = schedule.n_racks
    adj: Adjacency = [[] for _ in range(n)]
    for w in range(schedule.n_switches):
        if not include_down and schedule.is_down(w, slice_index):
            continue
        if w in failures.switches:
            continue
        matching = schedule.matching_of(w, slice_index)
        for a in range(n):
            b = matching[a]
            if a < b and failures.circuit_ok(a, b, w):
                adj[a].append((b, w))
                adj[b].append((a, w))
    return adj


class SliceRoutes:
    """All-pairs shortest-path tables for a single slice graph."""

    def __init__(self, adjacency: Adjacency) -> None:
        self.adjacency = adjacency
        self.n = len(adjacency)
        #: ``dist[src][dst]`` in ToR-to-ToR hops; UNREACHABLE if disconnected.
        self.dist: list[list[int]] = [
            self._bfs(src) for src in range(self.n)
        ]

    @classmethod
    def for_slice(
        cls,
        schedule: OperaSchedule,
        slice_index: int,
        failures: FailureSet | None = None,
        include_down: bool = False,
    ) -> "SliceRoutes":
        return cls(build_adjacency(schedule, slice_index, failures, include_down))

    def _bfs(self, src: int) -> list[int]:
        dist = [UNREACHABLE] * self.n
        dist[src] = 0
        queue = deque([src])
        while queue:
            node = queue.popleft()
            d = dist[node] + 1
            for peer, _switch in self.adjacency[node]:
                if dist[peer] == UNREACHABLE:
                    dist[peer] = d
                    queue.append(peer)
        return dist

    # ------------------------------------------------------------- next hops

    def next_hops(self, src: int, dst: int) -> list[tuple[int, int]]:
        """Equal-cost ``(peer, switch)`` next hops from src toward dst."""
        if src == dst:
            return []
        target = self.dist[src][dst]
        if target == UNREACHABLE:
            return []
        return [
            (peer, switch)
            for peer, switch in self.adjacency[src]
            if self.dist[peer][dst] == target - 1
        ]

    def next_hop(self, src: int, dst: int, salt: int = 0) -> tuple[int, int] | None:
        """One deterministic equal-cost next hop (salted for spraying)."""
        options = self.next_hops(src, dst)
        if not options:
            return None
        return options[salt % len(options)]

    def shortest_path(self, src: int, dst: int, salt: int = 0) -> list[int] | None:
        """A shortest rack path src..dst, or None if disconnected."""
        if self.dist[src][dst] == UNREACHABLE:
            return None
        path = [src]
        node = src
        while node != dst:
            hop = self.next_hop(node, dst, salt=salt + len(path))
            assert hop is not None, "BFS distances guarantee progress"
            node = hop[0]
            path.append(node)
        return path

    # ----------------------------------------------------------------- stats

    def reachable_pairs(self) -> int:
        """Ordered (src, dst) pairs with src != dst and a finite path."""
        return sum(
            1
            for src in range(self.n)
            for dst in range(self.n)
            if src != dst and self.dist[src][dst] != UNREACHABLE
        )

    def path_length_counts(self) -> dict[int, int]:
        """Histogram of finite shortest-path lengths over ordered pairs."""
        counts: dict[int, int] = {}
        for src in range(self.n):
            row = self.dist[src]
            for dst in range(self.n):
                if src == dst:
                    continue
                d = row[dst]
                if d != UNREACHABLE:
                    counts[d] = counts.get(d, 0) + 1
        return counts


class OperaRouting:
    """Cached per-slice routing tables for one schedule (+ failure set)."""

    def __init__(
        self,
        schedule: OperaSchedule,
        failures: FailureSet | None = None,
        include_down: bool = False,
    ) -> None:
        self.schedule = schedule
        self.failures = failures or FailureSet.none()
        self.include_down = include_down
        self._cache: dict[int, SliceRoutes] = {}

    def routes(self, slice_index: int) -> SliceRoutes:
        s = slice_index % self.schedule.cycle_slices
        if s not in self._cache:
            self._cache[s] = SliceRoutes.for_slice(
                self.schedule, s, self.failures, self.include_down
            )
        return self._cache[s]

    def all_slices(self) -> list[SliceRoutes]:
        return [self.routes(s) for s in range(self.schedule.cycle_slices)]

    def any_slice_reachable(self, src: int, dst: int) -> bool:
        """True if some topology slice connects ``src`` to ``dst``.

        This is the packet engine's effective reachability criterion: a
        stamped packet that finds its pair disconnected in one slice is
        re-stamped on the current slice later, so a flow completes iff
        *any* slice of the cycle offers a path (the dynamic-failure
        differential test pins the engine to exactly this predicate).
        """
        if src == dst:
            return True
        return any(
            self.routes(s).dist[src][dst] != UNREACHABLE
            for s in range(self.schedule.cycle_slices)
        )

    def path_length_histogram(self) -> dict[int, int]:
        """Histogram of shortest-path hops across all slices and rack pairs."""
        total: dict[int, int] = {}
        for routes in self.all_slices():
            for hops, count in routes.path_length_counts().items():
                total[hops] = total.get(hops, 0) + count
        return total
