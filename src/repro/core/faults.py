"""Failure model for Opera components (paper sections 3.6.2 and 5.5).

Opera recovers from link, ToR and circuit-switch failures by recomputing
routes around failed components; failure information propagates via a hello
protocol run over each newly-established circuit, so any connected ToR
learns of a failure within at most two cycles. This module only models
*which* components are failed; route recomputation lives in
:mod:`repro.core.routing` and the measurement harness in
:mod:`repro.analysis.failures`.

A *link* is a (rack uplink, circuit switch) pair — the fiber from ToR
``rack`` to circuit switch ``switch``. When it fails, every circuit that the
switch would provide to that rack (one per slice) is unusable in both
directions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["FailureSet"]


@dataclass(frozen=True)
class FailureSet:
    """An immutable set of failed components.

    Attributes
    ----------
    links:
        Failed ToR-to-circuit-switch fibers, as ``(rack, switch)`` pairs.
    racks:
        Failed ToR switches (their hosts are considered off the network,
        and connectivity metrics exclude pairs involving them).
    switches:
        Failed rotor circuit switches.
    """

    links: frozenset[tuple[int, int]] = frozenset()
    racks: frozenset[int] = frozenset()
    switches: frozenset[int] = frozenset()

    @classmethod
    def none(cls) -> "FailureSet":
        return cls()

    @classmethod
    def random_links(
        cls, n_racks: int, n_switches: int, fraction: float, rng: random.Random
    ) -> "FailureSet":
        """Fail a uniform random ``fraction`` of the rack-to-switch fibers."""
        all_links = [(r, w) for r in range(n_racks) for w in range(n_switches)]
        k = round(fraction * len(all_links))
        return cls(links=frozenset(rng.sample(all_links, k)))

    @classmethod
    def random_racks(
        cls, n_racks: int, fraction: float, rng: random.Random
    ) -> "FailureSet":
        k = round(fraction * n_racks)
        return cls(racks=frozenset(rng.sample(range(n_racks), k)))

    @classmethod
    def random_switches(
        cls, n_switches: int, fraction: float, rng: random.Random
    ) -> "FailureSet":
        k = round(fraction * n_switches)
        return cls(switches=frozenset(rng.sample(range(n_switches), k)))

    @property
    def empty(self) -> bool:
        return not (self.links or self.racks or self.switches)

    def link_ok(self, rack: int, switch: int) -> bool:
        """True if the fiber rack—switch is usable."""
        return (
            rack not in self.racks
            and switch not in self.switches
            and (rack, switch) not in self.links
        )

    def circuit_ok(self, rack_a: int, rack_b: int, switch: int) -> bool:
        """True if the full a—switch—b circuit is usable."""
        return self.link_ok(rack_a, switch) and self.link_ok(rack_b, switch)

    def union(self, other: "FailureSet") -> "FailureSet":
        return FailureSet(
            links=self.links | other.links,
            racks=self.racks | other.racks,
            switches=self.switches | other.switches,
        )
