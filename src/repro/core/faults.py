"""Failure model for Opera components (paper sections 3.6.2 and 5.5).

Opera recovers from link, ToR and circuit-switch failures by recomputing
routes around failed components; failure information propagates via a hello
protocol run over each newly-established circuit, so any connected ToR
learns of a failure within at most two cycles. This module models *which*
components are failed — statically (:class:`FailureSet`) and over time
(:class:`FailureSchedule`, a seeded sequence of timed fail/repair events
the packet engine executes as ordinary simulator events; see
:mod:`repro.net.failures`). Route recomputation lives in
:mod:`repro.core.routing` and the static measurement harness in
:mod:`repro.analysis.failures`.

A *link* is a (rack uplink, circuit switch) pair — the fiber from ToR
``rack`` to circuit switch ``switch``. When it fails, every circuit that the
switch would provide to that rack (one per slice) is unusable in both
directions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["FailureSet", "FailureEvent", "FailureSchedule"]


def _check_fraction(name: str, fraction: float, population: int, k: int) -> None:
    """Reject fractions outside [0, 1] and oversized samples loudly.

    ``rng.sample`` raises its own ``ValueError`` for oversized samples, but
    its message talks about "sample larger than population" without naming
    the argument the caller actually passed — surface ``fraction`` instead.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(
            f"fraction must be in [0, 1], got fraction={fraction!r}"
        )
    if k > population:
        raise ValueError(
            f"fraction={fraction!r} asks for {k} failures out of a "
            f"population of {population} {name}"
        )


@dataclass(frozen=True)
class FailureSet:
    """An immutable set of failed components.

    Attributes
    ----------
    links:
        Failed ToR-to-circuit-switch fibers, as ``(rack, switch)`` pairs.
    racks:
        Failed ToR switches (their hosts are considered off the network,
        and connectivity metrics exclude pairs involving them).
    switches:
        Failed rotor circuit switches.
    """

    links: frozenset[tuple[int, int]] = frozenset()
    racks: frozenset[int] = frozenset()
    switches: frozenset[int] = frozenset()

    @classmethod
    def none(cls) -> "FailureSet":
        return cls()

    @classmethod
    def random_links(
        cls, n_racks: int, n_switches: int, fraction: float, rng: random.Random
    ) -> "FailureSet":
        """Fail a uniform random ``fraction`` of the rack-to-switch fibers."""
        all_links = [(r, w) for r in range(n_racks) for w in range(n_switches)]
        k = round(fraction * len(all_links))
        _check_fraction("links", fraction, len(all_links), k)
        return cls(links=frozenset(rng.sample(all_links, k)))

    @classmethod
    def random_racks(
        cls, n_racks: int, fraction: float, rng: random.Random
    ) -> "FailureSet":
        k = round(fraction * n_racks)
        _check_fraction("racks", fraction, n_racks, k)
        return cls(racks=frozenset(rng.sample(range(n_racks), k)))

    @classmethod
    def random_switches(
        cls, n_switches: int, fraction: float, rng: random.Random
    ) -> "FailureSet":
        k = round(fraction * n_switches)
        _check_fraction("switches", fraction, n_switches, k)
        return cls(switches=frozenset(rng.sample(range(n_switches), k)))

    @property
    def empty(self) -> bool:
        return not (self.links or self.racks or self.switches)

    def link_ok(self, rack: int, switch: int) -> bool:
        """True if the fiber rack—switch is usable."""
        return (
            rack not in self.racks
            and switch not in self.switches
            and (rack, switch) not in self.links
        )

    def circuit_ok(self, rack_a: int, rack_b: int, switch: int) -> bool:
        """True if the full a—switch—b circuit is usable."""
        return self.link_ok(rack_a, switch) and self.link_ok(rack_b, switch)

    def union(self, other: "FailureSet") -> "FailureSet":
        return FailureSet(
            links=self.links | other.links,
            racks=self.racks | other.racks,
            switches=self.switches | other.switches,
        )


# ---------------------------------------------------------------------------
# Timed fail/repair events
# ---------------------------------------------------------------------------

#: Recognised component kinds of a :class:`FailureEvent`.
COMPONENTS = ("link", "rack", "switch")


@dataclass(frozen=True, order=True)
class FailureEvent:
    """One timed fail or repair of a single component.

    ``target`` is a ``(rack, switch)`` pair for ``component == "link"`` and
    a bare index for racks and switches. Ordering is by time (then fields),
    so a sorted event tuple replays deterministically.
    """

    time_ps: int
    component: str  # "link" | "rack" | "switch"
    target: tuple[int, int] | int
    action: str = "fail"  # "fail" | "repair"

    def __post_init__(self) -> None:
        if self.time_ps < 0:
            raise ValueError(f"event time must be >= 0, got {self.time_ps}")
        if self.component not in COMPONENTS:
            raise ValueError(
                f"unknown component {self.component!r}; known: {COMPONENTS}"
            )
        if self.action not in ("fail", "repair"):
            raise ValueError(f"unknown action {self.action!r}")
        if self.component == "link":
            if not (isinstance(self.target, tuple) and len(self.target) == 2):
                raise ValueError(
                    f"link target must be a (rack, switch) pair, "
                    f"got {self.target!r}"
                )
        elif not isinstance(self.target, int):
            raise ValueError(
                f"{self.component} target must be an int, got {self.target!r}"
            )


@dataclass(frozen=True)
class FailureSchedule:
    """A deterministic sequence of timed fail/repair events.

    The packet engine executes these as ordinary simulator events
    (:meth:`repro.net.builders.OperaSimNetwork.install_failures`); the
    static analyses fold them into a :class:`FailureSet` snapshot with
    :meth:`failure_set_at`. Events are stored sorted by time so replay
    order never depends on construction order.
    """

    events: tuple[FailureEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(sorted(self.events)))

    @classmethod
    def empty(cls) -> "FailureSchedule":
        """Armed-but-empty: machinery installed, nothing ever fails."""
        return cls()

    @classmethod
    def fail_set(
        cls,
        failures: FailureSet,
        at_ps: int,
        repair_at_ps: int | None = None,
    ) -> "FailureSchedule":
        """Fail every component of ``failures`` at ``at_ps`` (and
        optionally repair them all at ``repair_at_ps``)."""
        if repair_at_ps is not None and repair_at_ps <= at_ps:
            raise ValueError(
                f"repair_at_ps={repair_at_ps} must be after at_ps={at_ps}"
            )
        events: list[FailureEvent] = []
        targets: list[tuple[str, tuple[int, int] | int]] = (
            [("link", t) for t in sorted(failures.links)]
            + [("rack", t) for t in sorted(failures.racks)]
            + [("switch", t) for t in sorted(failures.switches)]
        )
        for component, target in targets:
            events.append(FailureEvent(at_ps, component, target))
            if repair_at_ps is not None:
                events.append(
                    FailureEvent(repair_at_ps, component, target, "repair")
                )
        return cls(tuple(events))

    @classmethod
    def random(
        cls,
        n_racks: int,
        n_switches: int,
        component: str,
        fraction: float,
        at_ps: int,
        rng: random.Random,
        repair_at_ps: int | None = None,
    ) -> "FailureSchedule":
        """A seeded single-epoch draw: fail a random ``fraction`` of one
        component class at ``at_ps`` (mirroring fig11's static draws)."""
        if component == "link":
            fs = FailureSet.random_links(n_racks, n_switches, fraction, rng)
        elif component == "rack":
            fs = FailureSet.random_racks(n_racks, fraction, rng)
        elif component == "switch":
            fs = FailureSet.random_switches(n_switches, fraction, rng)
        else:
            raise ValueError(
                f"unknown component {component!r}; known: {COMPONENTS}"
            )
        return cls.fail_set(fs, at_ps, repair_at_ps)

    # ---------------------------------------------------------------- queries

    @property
    def empty_schedule(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def failure_set_at(self, time_ps: int) -> FailureSet:
        """The :class:`FailureSet` in force at ``time_ps`` (inclusive)."""
        links: set[tuple[int, int]] = set()
        racks: set[int] = set()
        switches: set[int] = set()
        pools = {"link": links, "rack": racks, "switch": switches}
        for event in self.events:
            if event.time_ps > time_ps:
                break
            pool = pools[event.component]
            if event.action == "fail":
                pool.add(event.target)  # type: ignore[arg-type]
            else:
                pool.discard(event.target)  # type: ignore[arg-type]
        return FailureSet(
            links=frozenset(links),
            racks=frozenset(racks),
            switches=frozenset(switches),
        )

    def final_failure_set(self) -> FailureSet:
        """The failure set after every event has been applied."""
        if not self.events:
            return FailureSet.none()
        return self.failure_set_at(self.events[-1].time_ps)

    def validate(self, n_racks: int, n_switches: int) -> "FailureSchedule":
        """Raise if any event targets a component outside the network."""
        for event in self.events:
            if event.component == "link":
                rack, switch = event.target  # type: ignore[misc]
                ok = 0 <= rack < n_racks and 0 <= switch < n_switches
            elif event.component == "rack":
                ok = 0 <= event.target < n_racks  # type: ignore[operator]
            else:
                ok = 0 <= event.target < n_switches  # type: ignore[operator]
            if not ok:
                raise ValueError(
                    f"event {event} targets a component outside a "
                    f"{n_racks}-rack / {n_switches}-switch network"
                )
        return self
