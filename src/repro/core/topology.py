"""The Opera network object: racks, hosts, uplinks, schedule and timing.

Ties together the factorization/schedule machinery with the physical shape
of a deployment. An Opera ToR is provisioned 1:1 (paper Figure 2): a
``k``-port ToR dedicates ``d = k/2`` ports to hosts and ``u = k/2`` uplinks
to rotor circuit switches — one uplink per switch.

The paper's reference design (sections 4–5) is ``k = 12``: 108 racks x 6
hosts = 648 hosts, 6 circuit switches, 18 matchings per switch. Larger
networks follow ``n_racks = 3 k^2 / 4`` (k=24 gives the 5,184-host network
of Figure 12; k=64 the 98,304-host network of Appendix B).
"""

from __future__ import annotations

import random
from typing import Sequence

from .matchings import Matching
from .schedule import OperaSchedule
from .timing import PS_PER_US, TimingParams

__all__ = ["OperaNetwork", "default_rack_count"]


def default_rack_count(k: int) -> int:
    """Paper-style rack count for ToR radix ``k`` (``3 k^2 / 4``, adjusted).

    The count is rounded up to the nearest value that is both even and a
    multiple of ``u = k/2`` so a valid schedule exists.
    """
    if k < 4 or k % 2:
        raise ValueError(f"ToR radix must be an even integer >= 4, got {k}")
    u = k // 2
    n = (3 * k * k + 3) // 4
    step = u if (u % 2 == 0) else 2 * u
    return ((n + step - 1) // step) * step


class OperaNetwork:
    """A concrete Opera deployment.

    Parameters
    ----------
    k:
        ToR switch radix. Hosts per rack and uplink count are both ``k/2``.
    n_racks:
        Number of racks; defaults to the paper's ``3 k^2 / 4`` scaling.
    group_size:
        Reconfiguration group size (Appendix B), default one global group.
    seed:
        Design-time randomness seed (factorization + schedule).
    """

    def __init__(
        self,
        k: int = 12,
        n_racks: int | None = None,
        group_size: int | None = None,
        seed: int | None = 0,
        factorization: Sequence[Matching] | None = None,
        epsilon_ps: int = 90 * PS_PER_US,
        reconfiguration_ps: int = 10 * PS_PER_US,
        guard_ps: int = 0,
        link_rate_bps: int = 10_000_000_000,
    ) -> None:
        if k < 4 or k % 2:
            raise ValueError(f"ToR radix must be an even integer >= 4, got {k}")
        self.k = k
        self.hosts_per_rack = k // 2
        self.n_switches = k // 2
        self.n_racks = n_racks if n_racks is not None else default_rack_count(k)
        if self.n_racks % self.n_switches:
            raise ValueError(
                f"{self.n_racks} racks not divisible by u={self.n_switches}"
            )
        if self.n_racks % 2:
            raise ValueError("rack count must be even")
        self.schedule = OperaSchedule(
            self.n_racks,
            self.n_switches,
            group_size=group_size,
            seed=seed,
            factorization=factorization,
        )
        self.timing = TimingParams(
            n_racks=self.n_racks,
            n_switches=self.n_switches,
            group_size=self.schedule.group_size,
            epsilon_ps=epsilon_ps,
            reconfiguration_ps=reconfiguration_ps,
            guard_ps=guard_ps,
            link_rate_bps=link_rate_bps,
        )

    # ------------------------------------------------------------------ shape

    @classmethod
    def reference_648(cls, seed: int | None = 0, **kwargs) -> "OperaNetwork":
        """The paper's 648-host, 108-rack, k=12 reference network."""
        return cls(k=12, n_racks=108, seed=seed, **kwargs)

    @property
    def n_hosts(self) -> int:
        return self.n_racks * self.hosts_per_rack

    @property
    def uplinks_per_rack(self) -> int:
        return self.n_switches

    def host_rack(self, host: int) -> int:
        """Rack housing ``host`` (hosts are numbered rack-major)."""
        if not 0 <= host < self.n_hosts:
            raise ValueError(f"host {host} out of range")
        return host // self.hosts_per_rack

    def rack_hosts(self, rack: int) -> range:
        """Host ids attached to ``rack``."""
        if not 0 <= rack < self.n_racks:
            raise ValueError(f"rack {rack} out of range")
        d = self.hosts_per_rack
        return range(rack * d, (rack + 1) * d)

    # ----------------------------------------------------------------- timing

    def slice_at(self, time_ps: int) -> int:
        """Topology slice index active at absolute time ``time_ps``."""
        return (time_ps // self.timing.slice_ps) % self.schedule.cycle_slices

    def slice_start_ps(self, slice_index: int, cycle: int = 0) -> int:
        return (cycle * self.schedule.cycle_slices + slice_index) * self.timing.slice_ps

    @property
    def bulk_threshold_bytes(self) -> int:
        """Default flow-size cutoff between low-latency and bulk service."""
        return self.timing.bulk_threshold_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OperaNetwork(k={self.k}, racks={self.n_racks}, "
            f"hosts={self.n_hosts}, switches={self.n_switches}, "
            f"cycle={self.schedule.cycle_slices} slices)"
        )
