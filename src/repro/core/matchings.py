"""Disjoint matching factorizations of the complete graph.

Opera's topology generation (paper section 3.3) starts by factoring the
complete graph on ``n`` racks — represented as the ``n x n`` all-ones matrix,
i.e. including self-loops — into ``n`` disjoint, symmetric matchings. Each
matching is a permutation ``p`` of the racks that is an involution
(``p[p[i]] == i``): rack ``i`` is circuit-connected to rack ``p[i]``, and the
connection is bidirectional. The union of all ``n`` matchings covers every
ordered rack pair (including ``(i, i)``) exactly once.

For even ``n`` the classic round-robin (circle method) tournament schedule
yields ``n - 1`` perfect matchings that partition the edges of ``K_n``; the
identity permutation (every rack "paired" with itself) accounts for the
diagonal of the all-ones matrix and brings the count to ``n``.

The factorization is randomized by conjugating every matching with a common
random relabeling of the racks, which preserves both the involution property
and the exact-cover property.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Matching",
    "round_robin_factorization",
    "random_factorization",
    "identity_matching",
    "is_involution",
    "matching_edges",
    "relabel_matching",
    "verify_factorization",
    "FactorizationError",
]

#: A matching over ``n`` racks, stored as a permutation tuple: rack ``i`` is
#: connected to rack ``Matching[i]``. Always an involution.
Matching = tuple[int, ...]


class FactorizationError(ValueError):
    """Raised when a set of matchings is not a valid factorization."""


def identity_matching(n: int) -> Matching:
    """The self-loop matching (the diagonal of the all-ones matrix)."""
    return tuple(range(n))


def is_involution(perm: Sequence[int]) -> bool:
    """True if ``perm`` is a permutation equal to its own inverse."""
    n = len(perm)
    seen = [False] * n
    for i, j in enumerate(perm):
        if not 0 <= j < n or seen[j]:
            return False
        seen[j] = True
    return all(perm[perm[i]] == i for i in range(n))


def matching_edges(matching: Sequence[int], include_loops: bool = False) -> Iterator[tuple[int, int]]:
    """Yield each unordered pair ``(i, j)`` with ``i <= j`` once.

    Self-loops (``i == matching[i]``) are skipped unless ``include_loops``.
    """
    for i, j in enumerate(matching):
        if i < j or (include_loops and i == j):
            yield (i, j)


def round_robin_factorization(n: int) -> list[Matching]:
    """Factor ``K_n`` + self-loops into ``n`` disjoint symmetric matchings.

    Uses the circle method: vertex ``n - 1`` stays fixed while vertices
    ``0 .. n-2`` rotate. Round ``r`` pairs vertex ``n - 1`` with ``r`` and
    pairs ``(r + i) mod (n - 1)`` with ``(r - i) mod (n - 1)`` for
    ``i = 1 .. n/2 - 1``. The identity matching is appended as the ``n``-th
    factor.

    Parameters
    ----------
    n:
        Number of racks; must be a positive even integer (every Opera
        deployment in the paper uses an even rack count).

    Returns
    -------
    list of ``n`` involutions whose edges exactly cover ``K_n`` plus loops.
    """
    if n <= 0 or n % 2:
        raise ValueError(f"rack count must be positive and even, got {n}")
    if n == 2:
        return [(1, 0), (0, 1)]
    m = n - 1
    factors: list[Matching] = []
    for r in range(m):
        perm = [0] * n
        perm[n - 1] = r
        perm[r] = n - 1
        for i in range(1, n // 2):
            a = (r + i) % m
            b = (r - i) % m
            perm[a] = b
            perm[b] = a
        factors.append(tuple(perm))
    factors.append(identity_matching(n))
    return factors


def relabel_matching(matching: Sequence[int], sigma: Sequence[int]) -> Matching:
    """Conjugate ``matching`` by the permutation ``sigma``.

    The result connects ``sigma[i]`` to ``sigma[matching[i]]``; conjugation
    preserves the involution property.
    """
    n = len(matching)
    out = [0] * n
    for i in range(n):
        out[sigma[i]] = sigma[matching[i]]
    return tuple(out)


def _random_perfect_matching(
    remaining: list[set[int]], rng: random.Random, walk_limit: int = 2000
) -> list[int] | None:
    """A random perfect matching of the graph given by ``remaining``.

    Randomized greedy with random-walk repair: vertices are matched in order
    of remaining degree; when a vertex has no free neighbour it steals a
    matched one, and the displaced vertex continues the walk until it finds a
    free neighbour (or the step budget runs out). Returns ``None`` on
    failure — the caller retries or backtracks.
    """
    n = len(remaining)
    partner = [-1] * n
    order = sorted(range(n), key=lambda v: (len(remaining[v]), rng.random()))
    for v in order:
        if partner[v] >= 0:
            continue
        free = [w for w in remaining[v] if partner[w] < 0]
        if free:
            w = rng.choice(free)
            partner[v] = w
            partner[w] = v
            continue
        cur = v
        for _ in range(walk_limit):
            neighbours = remaining[cur]
            if not neighbours:
                return None
            w = rng.choice(tuple(neighbours))
            displaced = partner[w]
            partner[cur] = w
            partner[w] = cur
            if displaced < 0 or displaced == cur:
                break
            partner[displaced] = -1
            free = [y for y in remaining[displaced] if partner[y] < 0]
            if free:
                y = rng.choice(free)
                partner[displaced] = y
                partner[y] = displaced
                break
            cur = displaced
        else:
            return None
    if all(partner[v] >= 0 and partner[v] != v for v in range(n)) and all(
        partner[partner[v]] == v for v in range(n)
    ):
        return partner
    return None


def random_factorization(
    n: int,
    rng: random.Random | None = None,
    color_attempts: int = 30,
    backtrack: int = 6,
    max_backtrack_events: int = 500,
) -> list[Matching]:
    """A randomized factorization of ``K_n`` + loops into ``n`` matchings.

    This is the paper's "randomly factor a complete graph into N disjoint
    (and symmetric) matchings": perfect matchings are drawn one at a time
    from the remaining edges of ``K_n`` by randomized greedy sampling with
    random-walk repair; if the endgame wedges (e.g. the leftover 2-regular
    graph has an odd cycle), the last few factors are resampled. The
    identity matching covers the diagonal of the all-ones matrix. The result
    behaves like a union of independent random matchings — in particular the
    per-slice unions Opera builds from it are good expanders, which the
    structured round-robin factorization is not (any two of its factors form
    a single Hamiltonian cycle). Deterministic given ``rng``.

    Raises :class:`FactorizationError` if generation fails repeatedly (which
    for even ``n >= 4`` practically never happens with the default budget).
    """
    if n <= 0 or n % 2:
        raise ValueError(f"rack count must be positive and even, got {n}")
    rng = rng or random.Random()
    if n == 2:
        return [(1, 0), (0, 1)]

    remaining: list[set[int]] = [set(range(n)) - {v} for v in range(n)]
    factors: list[list[int]] = []
    backtrack_events = 0
    while len(factors) < n - 1:
        matching = None
        for _ in range(color_attempts):
            matching = _random_perfect_matching(remaining, rng)
            if matching is not None:
                break
        if matching is not None:
            factors.append(matching)
            for v in range(n):
                remaining[v].discard(matching[v])
            continue
        backtrack_events += 1
        if backtrack_events > max_backtrack_events:
            raise FactorizationError(
                f"failed to factor K_{n} within the retry budget"
            )
        for _ in range(min(backtrack, len(factors))):
            undone = factors.pop()
            for v in range(n):
                remaining[v].add(undone[v])

    result: list[Matching] = [tuple(p) for p in factors]
    result.append(identity_matching(n))
    rng.shuffle(result)
    return result


def verify_factorization(factors: Iterable[Sequence[int]], n: int) -> None:
    """Validate that ``factors`` is a disjoint factorization of K_n + loops.

    Raises :class:`FactorizationError` if any matching is not an involution,
    the count differs from ``n``, or some ordered pair is covered zero or
    multiple times.
    """
    factors = list(factors)
    if len(factors) != n:
        raise FactorizationError(f"expected {n} matchings, got {len(factors)}")
    seen: set[tuple[int, int]] = set()
    for idx, perm in enumerate(factors):
        if len(perm) != n:
            raise FactorizationError(f"matching {idx} has size {len(perm)} != {n}")
        if not is_involution(perm):
            raise FactorizationError(f"matching {idx} is not an involution")
        for i in range(n):
            pair = (i, perm[i])
            if pair in seen:
                raise FactorizationError(f"pair {pair} covered more than once")
            seen.add(pair)
    if len(seen) != n * n:
        raise FactorizationError(
            f"covered {len(seen)} ordered pairs, expected {n * n}"
        )
