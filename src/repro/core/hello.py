"""Failure detection and dissemination: the hello protocol (section 3.6.2).

Opera detects and routes around failures without a central controller:
each time a new circuit is configured, the ToR CPUs at both ends exchange
hello messages carrying any failure information they have accumulated. A
missing hello marks the circuit's link as bad; because the cyclic schedule
connects every ToR pair every cycle, "any ToR that remains connected to the
network will learn of any failure event within at most two cycles".

This module simulates that process at slice granularity over a schedule and
a :class:`~repro.core.faults.FailureSet`: ground truth is the set of dead
circuits; knowledge spreads by detection (a failed hello on a circuit you
are an endpoint of) and gossip (unioning knowledge across every live
circuit). :func:`slices_to_full_knowledge` verifies the two-cycle bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from .faults import FailureSet
from .schedule import OperaSchedule

__all__ = [
    "DeadCircuit",
    "HelloProtocol",
    "slices_to_full_knowledge",
    "detection_delay_slices",
]


@dataclass(frozen=True, order=True)
class DeadCircuit:
    """A rack-to-rack circuit that no longer carries hellos."""

    rack_a: int
    rack_b: int
    switch: int


class HelloProtocol:
    """Per-slice hello exchange and gossip over one Opera schedule."""

    def __init__(self, schedule: OperaSchedule, failures: FailureSet) -> None:
        self.schedule = schedule
        self.failures = failures
        #: Per-rack set of known dead circuits. Failed racks are inert.
        self.knowledge: list[set[DeadCircuit]] = [
            set() for _ in range(schedule.n_racks)
        ]
        self._slice = 0

    # ------------------------------------------------------------ ground truth

    def all_dead_circuits(self) -> set[DeadCircuit]:
        """Every circuit of the cycle killed by the failure set.

        Circuits touching a *failed rack* are excluded: the paper's metric
        is what the surviving ToRs must learn to route around, and a dead
        ToR's circuits are discovered the same way (missing hellos), so
        they are reported as dead circuits of the live endpoint only.
        """
        dead: set[DeadCircuit] = set()
        sched = self.schedule
        for s in range(sched.cycle_slices):
            for w in sched.up_switches(s):
                matching = sched.matching_of(w, s)
                for a in range(sched.n_racks):
                    b = matching[a]
                    if a >= b or self.failures.circuit_ok(a, b, w):
                        continue
                    if a in self.failures.racks and b in self.failures.racks:
                        continue  # no live endpoint: nobody needs this fact
                    dead.add(DeadCircuit(a, b, w))
        return dead

    def live_racks(self) -> list[int]:
        return [
            r for r in range(self.schedule.n_racks) if r not in self.failures.racks
        ]

    # ----------------------------------------------------------------- stepping

    def step(self) -> None:
        """One topology slice: hellos on every configured circuit.

        On a *live* circuit both ends exchange and union their knowledge;
        on a dead circuit each live end detects the failure and records the
        dead circuit. Updates are staged so information moves one circuit
        per slice (no intra-slice transitive gossip — hellos are exchanged
        once, at circuit establishment).
        """
        sched = self.schedule
        s = self._slice % sched.cycle_slices
        staged: dict[int, set[DeadCircuit]] = {}
        for w in sched.up_switches(s):
            matching = sched.matching_of(w, s)
            for a in range(sched.n_racks):
                b = matching[a]
                if a >= b:
                    continue
                a_live = a not in self.failures.racks
                b_live = b not in self.failures.racks
                if self.failures.circuit_ok(a, b, w) and a_live and b_live:
                    union = self.knowledge[a] | self.knowledge[b]
                    staged.setdefault(a, set()).update(union)
                    staged.setdefault(b, set()).update(union)
                else:
                    fact = DeadCircuit(a, b, w)
                    if a_live:
                        staged.setdefault(a, set()).add(fact)
                    if b_live:
                        staged.setdefault(b, set()).add(fact)
        for rack, facts in staged.items():
            self.knowledge[rack] |= facts
        self._slice += 1

    def run_cycles(self, n_cycles: int) -> None:
        for _ in range(n_cycles * self.schedule.cycle_slices):
            self.step()

    # ---------------------------------------------------------------- queries

    def fully_informed(self) -> bool:
        """Do all live racks know every dead circuit?"""
        truth = self.all_dead_circuits()
        return all(self.knowledge[r] >= truth for r in self.live_racks())

    def knowledge_deficit(self) -> int:
        """Total number of (rack, unknown fact) pairs remaining."""
        truth = self.all_dead_circuits()
        return sum(len(truth - self.knowledge[r]) for r in self.live_racks())


def slices_to_full_knowledge(
    schedule: OperaSchedule,
    failures: FailureSet,
    max_cycles: int = 4,
) -> int | None:
    """Slices until every live ToR knows every failure, or ``None``.

    The paper's bound is two cycles for any ToR that remains connected;
    under partitioning failures full knowledge may never arrive.
    """
    protocol = HelloProtocol(schedule, failures)
    limit = max_cycles * schedule.cycle_slices
    for step in range(1, limit + 1):
        protocol.step()
        if protocol.fully_informed():
            return step
    return None


def detection_delay_slices(
    schedule: OperaSchedule,
    failures: FailureSet,
    cap_cycles: int = 2,
) -> int:
    """Slices until the network has rerouted around ``failures``.

    The dynamic failure layer (:mod:`repro.net.failures`) models detection
    as a single epoch at which every surviving ToR has learned the failure
    set and swapped in recomputed routes. This helper derives that epoch
    from the actual hello propagation (:func:`slices_to_full_knowledge`),
    capped at the paper's two-cycle bound — under partitioning failures
    full knowledge never arrives, but every *reachable* ToR has learned
    everything it ever will by then.
    """
    if failures.empty:
        return 0
    slices = slices_to_full_knowledge(schedule, failures, max_cycles=cap_cycles)
    cap = cap_cycles * schedule.cycle_slices
    return cap if slices is None else min(slices, cap)
