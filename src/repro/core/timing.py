"""Opera's time constants (paper section 4.1, Figure 6, Appendix B).

A *topology slice* is the interval between consecutive network-wide
reconfiguration events. Its duration is ``epsilon + r`` where

* ``epsilon`` is the worst-case end-to-end delay for a low-latency packet to
  traverse the network (so in-flight packets drain before the circuit they
  were routed over is torn down), and
* ``r`` is the circuit-switch reconfiguration delay.

With ``u`` circuit switches arranged in groups of ``group_size`` (Appendix B;
the default is a single group, i.e. exactly one switch reconfiguring at a
time), each switch holds a matching for ``group_size`` slices and shows all
``n_racks / u`` of its matchings once per cycle, giving

``cycle slices = group_size * n_racks / u``.

For the paper's reference 108-rack, k=12 design (``u = 6``, ``epsilon = 90
us``, ``r = 10 us``) this yields a 100 us slice, a 98.3% duty cycle, and a
10.8 ms cycle time — the "10.7 ms" of section 4.1. All times are integer
picoseconds, the unit used throughout the packet simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "PS_PER_US",
    "PS_PER_MS",
    "PS_PER_S",
    "TimingParams",
    "worst_case_epsilon_ps",
]

PS_PER_US = 1_000_000
PS_PER_MS = 1_000 * PS_PER_US
PS_PER_S = 1_000 * PS_PER_MS

#: Default link rate (bits per second) used across the paper's evaluation.
DEFAULT_LINK_RATE_BPS = 10_000_000_000
#: Default inter-ToR propagation delay: 500 ns = 100 m of fiber.
DEFAULT_PROPAGATION_PS = 500_000
#: Default MTU (bytes).
DEFAULT_MTU = 1500


def serialization_ps(size_bytes: int, rate_bps: int = DEFAULT_LINK_RATE_BPS) -> int:
    """Time to serialize ``size_bytes`` onto a link, in integer picoseconds."""
    return (size_bytes * 8 * PS_PER_S) // rate_bps


def worst_case_epsilon_ps(
    worst_path_hops: int = 5,
    queue_bytes: int = 24_000,
    mtu: int = DEFAULT_MTU,
    rate_bps: int = DEFAULT_LINK_RATE_BPS,
    propagation_ps: int = DEFAULT_PROPAGATION_PS,
) -> int:
    """Upper-estimate of the end-to-end drain time ``epsilon``.

    Sums, per hop, the drain time of a full queue, the packet's own
    serialization, and fiber propagation. With the paper's parameters
    (5 hops, 24 KB queues, 10 Gb/s, 500 ns/hop) this evaluates to ~104 us;
    the paper rounds its provisioned value down to 90 us, which remains the
    default in :class:`TimingParams`.
    """
    per_hop = (
        serialization_ps(queue_bytes, rate_bps)
        + serialization_ps(mtu, rate_bps)
        + propagation_ps
    )
    return worst_path_hops * per_hop


@dataclass(frozen=True)
class TimingParams:
    """Derived Opera time constants for a given deployment.

    Parameters
    ----------
    n_racks, n_switches:
        Topology shape; ``n_racks`` must be divisible by ``n_switches``.
    group_size:
        Switches per reconfiguration group (Appendix B). ``None`` means one
        global group (exactly one switch reconfiguring at a time). Larger
        deployments use groups of ~6 so that ``n_switches / group_size``
        switches reconfigure simultaneously and the cycle shortens.
    epsilon_ps, reconfiguration_ps:
        The ``epsilon`` and ``r`` of Figure 6.
    guard_ps:
        Guard band applied around each reconfiguration (section 3.5).
    """

    n_racks: int
    n_switches: int
    group_size: int | None = None
    epsilon_ps: int = 90 * PS_PER_US
    reconfiguration_ps: int = 10 * PS_PER_US
    guard_ps: int = 0
    link_rate_bps: int = DEFAULT_LINK_RATE_BPS

    def __post_init__(self) -> None:
        if self.n_racks % self.n_switches:
            raise ValueError(
                f"{self.n_racks} racks not divisible by {self.n_switches} switches"
            )
        group = self.group_size if self.group_size is not None else self.n_switches
        if group <= 0 or self.n_switches % group:
            raise ValueError(
                f"group size {group} must divide switch count {self.n_switches}"
            )
        object.__setattr__(self, "group_size", group)
        if self.epsilon_ps <= 0 or self.reconfiguration_ps < 0:
            raise ValueError("epsilon must be positive and r non-negative")
        if self.guard_ps < 0 or 2 * self.guard_ps >= self.slice_ps:
            if self.guard_ps:
                raise ValueError("guard band must leave usable time in a slice")

    @property
    def slice_ps(self) -> int:
        """Duration of one topology slice: ``epsilon + r``."""
        return self.epsilon_ps + self.reconfiguration_ps

    @property
    def n_groups(self) -> int:
        return self.n_switches // self.group_size  # type: ignore[operator]

    @property
    def matchings_per_switch(self) -> int:
        return self.n_racks // self.n_switches

    @property
    def cycle_slices(self) -> int:
        """Slices per full cycle (every rack pair directly connected once)."""
        return self.group_size * self.matchings_per_switch  # type: ignore[operator]

    @property
    def cycle_ps(self) -> int:
        return self.cycle_slices * self.slice_ps

    @property
    def holding_ps(self) -> int:
        """How long a switch holds one matching before reconfiguring."""
        return self.group_size * self.slice_ps  # type: ignore[operator]

    @property
    def duty_cycle(self) -> float:
        """Fraction of time a switch's circuits carry traffic (98% in paper)."""
        return 1.0 - self.reconfiguration_ps / self.holding_ps

    @property
    def low_latency_capacity_factor(self) -> float:
        """Relative low-latency capacity after guard bands (1%/us of guard)."""
        return 1.0 - self.guard_ps / self.slice_ps

    @property
    def bulk_capacity_factor(self) -> float:
        """Relative bulk capacity after guard bands (~0.2%/us of guard)."""
        return 1.0 - self.guard_ps / self.holding_ps

    @property
    def bulk_threshold_bytes(self) -> int:
        """Flow size above which waiting one cycle costs < ~2x ideal FCT.

        A flow can amortize the worst-case wait of one full cycle if its
        link-rate-limited transmission time is at least the cycle time;
        the paper rounds the resulting 13.5 MB up to 15 MB for the k=12
        reference design.
        """
        return (self.cycle_ps * self.link_rate_bps) // (8 * PS_PER_S)

    def relative_cycle_time(self, reference: "TimingParams") -> float:
        """Cycle time of ``self`` relative to ``reference`` (Figure 14)."""
        return self.cycle_ps / reference.cycle_ps
