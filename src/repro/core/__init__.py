"""Opera's core: factorizations, rotor schedules, routing and timing."""

from .faults import FailureSet
from .forwarding import ForwardingPipeline, TrafficClass, classify_flow
from .hello import DeadCircuit, HelloProtocol, slices_to_full_knowledge
from .lifting import lift_factorization, lifted_random_factorization
from .matchings import (
    FactorizationError,
    Matching,
    identity_matching,
    is_involution,
    matching_edges,
    random_factorization,
    relabel_matching,
    round_robin_factorization,
    verify_factorization,
)
from .routing import UNREACHABLE, OperaRouting, SliceRoutes, build_adjacency
from .schedule import DirectConnection, OperaSchedule
from .state import (
    PAPER_TABLE1_CONFIGS,
    TOFINO_RULE_CAPACITY,
    RuleSetSize,
    ruleset_size,
    table1_rows,
)
from .timing import PS_PER_MS, PS_PER_S, PS_PER_US, TimingParams, worst_case_epsilon_ps
from .topology import OperaNetwork, default_rack_count

__all__ = [
    "FailureSet",
    "ForwardingPipeline",
    "TrafficClass",
    "classify_flow",
    "DeadCircuit",
    "HelloProtocol",
    "slices_to_full_knowledge",
    "lift_factorization",
    "lifted_random_factorization",
    "FactorizationError",
    "Matching",
    "identity_matching",
    "is_involution",
    "matching_edges",
    "random_factorization",
    "relabel_matching",
    "round_robin_factorization",
    "verify_factorization",
    "UNREACHABLE",
    "OperaRouting",
    "SliceRoutes",
    "build_adjacency",
    "DirectConnection",
    "OperaSchedule",
    "PAPER_TABLE1_CONFIGS",
    "TOFINO_RULE_CAPACITY",
    "RuleSetSize",
    "ruleset_size",
    "table1_rows",
    "PS_PER_MS",
    "PS_PER_S",
    "PS_PER_US",
    "TimingParams",
    "worst_case_epsilon_ps",
    "OperaNetwork",
    "default_rack_count",
]
